//! Engine-throughput benchmark: the packed-scan blastn kernel against the
//! frozen pre-rewrite baseline, on a synthetic `nt`-like volume.
//!
//! Two measurements, both hit-for-hit verified:
//!
//! * **seed scan** — raw lookup-table scanning in bases/second. Legacy is
//!   unpack-then-byte-scan (what the old kernel did per subject); packed is
//!   [`NtLookup::scan_packed`] rolling the seed word across 2-bit bytes.
//! * **fragment search** — end-to-end worker inner loop: read the volume
//!   bytes, search every query, report hits. Baseline decodes the whole
//!   volume and runs the old HashMap-diagonal allocating kernel; the new
//!   path reads a [`PackedVolume`] and runs [`search_packed_with`] with one
//!   reused [`ScanWorkspace`].
//!
//! A third measurement covers the **fused multi-query kernel**
//! ([`search_packed_batch_with`]): for B ∈ {1, 2, 4, 8} on a scan-bound
//! and an extend-bound query mix, one fused pass is timed against B
//! sequential per-query passes, interleaved, with hit-for-hit identity
//! asserted every rep. The resulting batch-scaling curve is the
//! provenance for `FUSED_SCAN_FRAC` in `parblast_mpiblast::simblast`.
//!
//! Writes `BENCH_engine.json` (CI archives it). The measured new-kernel
//! byte rate is the provenance for `SERVE_SEARCH_RATE` in
//! `parblast_core::experiments`.

use std::time::Instant;

use parblast_bench::{arg_u64, arg_value, print_table};
use parblast_blast::baseline::search_blastn_baseline;
use parblast_blast::{
    search_packed_batch_with, search_packed_with, BatchScanWorkspace, DbStats, NtLookup, Program,
    ScanWorkspace, SearchParams,
};
use parblast_seqdb::{
    extract_query, unpack_2bit_into, PackedVolume, SeqType, SyntheticConfig, SyntheticNt, Volume,
    VolumeWriter,
};

/// Build the on-disk bytes of a synthetic nt-like volume.
fn synth_volume_bytes(residues: u64, seed: u64) -> Vec<u8> {
    let mut g = SyntheticNt::new(SyntheticConfig {
        total_residues: residues,
        seed,
        ..Default::default()
    });
    let mut buf = std::io::Cursor::new(Vec::new());
    let mut w = VolumeWriter::new(&mut buf, SeqType::Nucleotide).expect("writer");
    while let Some((defline, codes)) = g.next() {
        w.add_codes(&defline, &codes).expect("add");
    }
    w.finish().expect("finish");
    buf.into_inner()
}

/// Median-of-`reps` wall time for `f`, seconds.
fn timed<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f();
        times.push(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], last.expect("reps >= 1"))
}

fn main() {
    let residues = arg_u64("--residues", 2_000_000);
    let nqueries = arg_u64("--queries", 4) as usize;
    let reps = arg_u64("--reps", 3) as usize;
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_engine.json".to_string());

    let bytes = synth_volume_bytes(residues, 11);
    let packed = PackedVolume::read_from(&mut bytes.as_slice()).expect("packed volume");
    let volume = packed.to_volume();
    // The volume is one *fragment* of the paper's 2.7 GB / 1.76 M-sequence
    // nt database, so score statistics use the global database numbers —
    // exactly what mpiBLAST workers do so fragment E-values match an
    // unpartitioned run. (Local stats on a small synthetic volume would
    // set the raw-score cutoff unrealistically low and drown the scan in
    // random short matches no full-scale search would report.)
    let db = DbStats {
        residues: 2_700_000_000,
        nseq: 1_760_000,
    };
    let params = SearchParams::blastn();
    // Query mix mirroring a real nt search: one query lifted from the
    // database (so both kernels must report — and agree on — real hits)
    // and the rest from an independent synthetic stream, which mostly
    // miss. Scanning misses is where a 2.7 GB pass spends its time.
    let mut qgen = SyntheticNt::new(SyntheticConfig {
        total_residues: (nqueries as u64).max(1) * 8000,
        min_len: 600,
        seed: 999,
        ..Default::default()
    });
    let queries: Vec<Vec<u8>> = (0..nqueries)
        .map(|i| {
            let src = if i == 0 {
                volume.sequences[7 % volume.sequences.len()].codes.clone()
            } else {
                qgen.next().expect("query stream").1
            };
            extract_query(&src, 568.min(src.len()), 0.03, 40 + i as u64)
        })
        .collect();
    println!(
        "engine benchmark: {:.2} Mbase fragment, {} sequences, {} queries of ~568 nt, \
         median of {} reps (statistics at full-nt scale)\n",
        volume.residues() as f64 / 1e6,
        volume.sequences.len(),
        nqueries,
        reps
    );

    // --- seed-scan throughput -------------------------------------------
    let lookup = NtLookup::build(&queries[0], params.word_size);
    let total_bases: u64 = (0..packed.nseq()).map(|i| packed.seq_len(i) as u64).sum();
    let mut decoded = Vec::new();
    let legacy_scan = |decoded: &mut Vec<u8>| {
        let mut n = 0u64;
        for i in 0..packed.nseq() {
            unpack_2bit_into(packed.packed(i), packed.seq_len(i), decoded);
            lookup.scan(decoded, |_, _| n += 1);
        }
        n
    };
    let packed_scan = || {
        let mut n = 0u64;
        for i in 0..packed.nseq() {
            lookup.scan_packed(packed.packed(i), packed.seq_len(i), |_, _| n += 1);
        }
        n
    };
    let legacy_seeds = legacy_scan(&mut decoded);
    let packed_seeds = packed_scan();
    assert_eq!(legacy_seeds, packed_seeds, "seed scans disagree");
    let (legacy_scan_s, _) = timed(reps, || legacy_scan(&mut decoded));
    let (packed_scan_s, _) = timed(reps, packed_scan);

    // --- end-to-end fragment search -------------------------------------
    // The two kernels are timed in interleaved pairs (after one warmup
    // pair) so clock-frequency drift over the run cancels instead of
    // penalizing whichever kernel runs last.
    let mut ws = ScanWorkspace::new();
    let run_base = |bytes: &[u8]| {
        let v = Volume::read_from(&mut &bytes[..]).expect("volume");
        queries
            .iter()
            .map(|q| search_blastn_baseline(q, &v, &params, db))
            .collect::<Vec<_>>()
    };
    let run_new = |bytes: &[u8], ws: &mut ScanWorkspace| {
        let p = PackedVolume::read_from(&mut &bytes[..]).expect("packed volume");
        queries
            .iter()
            .map(|q| search_packed_with(Program::Blastn, q, &p, &params, db, ws))
            .collect::<Vec<_>>()
    };
    let base_hits = run_base(&bytes);
    let new_hits = run_new(&bytes, &mut ws);
    let mut base_times = Vec::with_capacity(reps);
    let mut new_times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let b = run_base(&bytes);
        base_times.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let n = run_new(&bytes, &mut ws);
        new_times.push(t0.elapsed().as_secs_f64());
        assert_eq!(
            format!("{b:?}"),
            format!("{base_hits:?}"),
            "unstable baseline"
        );
        assert_eq!(format!("{n:?}"), format!("{new_hits:?}"), "unstable kernel");
    }
    base_times.sort_by(f64::total_cmp);
    new_times.sort_by(f64::total_cmp);
    let base_s = base_times[reps / 2];
    let new_s = new_times[reps / 2];
    assert_eq!(
        format!("{base_hits:?}"),
        format!("{new_hits:?}"),
        "kernels disagree"
    );
    let nhits: usize = new_hits.iter().map(|h| h.len()).sum();

    // --- fused multi-query batch scaling --------------------------------
    // The fused kernel rolls the seed word across the packed volume once
    // per batch instead of once per query. Two mixes bracket the regimes:
    // scan-bound queries come from an independent stream (nearly every
    // subject misses, so the seed scan the fusion amortizes dominates),
    // while extend-bound queries are all lifted from the same database
    // sequence (every pass hits it, so extension work — which fusion
    // cannot amortize — dominates, and the per-query path re-unpacks the
    // shared subject once per query).
    let mut sgen = SyntheticNt::new(SyntheticConfig {
        total_residues: 64_000,
        min_len: 600,
        seed: 4242,
        ..Default::default()
    });
    let scan_bound: Vec<Vec<u8>> = (0..8u64)
        .map(|i| {
            let src = sgen.next().expect("scan-bound query stream").1;
            extract_query(&src, 568.min(src.len()), 0.03, 100 + i)
        })
        .collect();
    let hot = &volume.sequences[7 % volume.sequences.len()].codes;
    let extend_bound: Vec<Vec<u8>> = (0..8u64)
        .map(|i| extract_query(hot, 568.min(hot.len()), 0.02, 200 + i))
        .collect();
    let mut bws = BatchScanWorkspace::new();
    let mut batch_rows: Vec<Vec<String>> = Vec::new();
    let mut scaling_json = String::from("[");
    for (mix, pool) in [("scan_bound", &scan_bound), ("extend_bound", &extend_bound)] {
        for &b in &[1usize, 2, 4, 8] {
            let qs: Vec<&[u8]> = pool[..b].iter().map(|q| q.as_slice()).collect();
            let run_seq = |ws: &mut ScanWorkspace| {
                qs.iter()
                    .map(|q| search_packed_with(Program::Blastn, q, &packed, &params, db, ws))
                    .collect::<Vec<_>>()
            };
            let run_fused = |bws: &mut BatchScanWorkspace| {
                search_packed_batch_with(Program::Blastn, &qs, &packed, &params, db, bws)
            };
            let u0 = ws.unpacks();
            let seq_hits = run_seq(&mut ws);
            let seq_unpacks = ws.unpacks() - u0;
            let u0 = bws.unpacks();
            let fused_hits = run_fused(&mut bws);
            let fused_unpacks = bws.unpacks() - u0;
            assert_eq!(
                format!("{seq_hits:?}"),
                format!("{fused_hits:?}"),
                "fused kernel must be hit-for-hit identical ({mix}, B={b})"
            );
            // The fused pass unpacks a subject at most once per fragment
            // pass, no matter how many queries hit it.
            assert!(
                fused_unpacks <= seq_unpacks,
                "fused pass unpacked more subjects ({mix}, B={b}): {fused_unpacks} vs {seq_unpacks}"
            );
            if mix == "extend_bound" && b > 1 {
                assert!(
                    fused_unpacks < seq_unpacks,
                    "{b} queries hitting one subject must share its unpack: \
                     {fused_unpacks} vs {seq_unpacks}"
                );
            }
            let mut seq_times = Vec::with_capacity(reps);
            let mut fused_times = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t0 = Instant::now();
                let s = run_seq(&mut ws);
                seq_times.push(t0.elapsed().as_secs_f64());
                let t0 = Instant::now();
                let f = run_fused(&mut bws);
                fused_times.push(t0.elapsed().as_secs_f64());
                assert_eq!(
                    format!("{s:?}"),
                    format!("{f:?}"),
                    "unstable fused/sequential pair ({mix}, B={b})"
                );
            }
            seq_times.sort_by(f64::total_cmp);
            fused_times.sort_by(f64::total_cmp);
            let seq_s = seq_times[reps / 2];
            let fused_s = fused_times[reps / 2];
            batch_rows.push(vec![
                mix.into(),
                format!("{b}"),
                format!("{seq_s:.4}"),
                format!("{fused_s:.4}"),
                format!("{:.2}x", seq_s / fused_s),
                format!("{fused_unpacks}/{seq_unpacks}"),
            ]);
            if scaling_json.len() > 1 {
                scaling_json.push_str(", ");
            }
            scaling_json.push_str(&format!(
                "{{\"mix\": \"{mix}\", \"batch\": {b}, \"sequential_s\": {seq_s:.6}, \
                 \"fused_s\": {fused_s:.6}, \"speedup\": {:.3}, \
                 \"sequential_unpacks\": {seq_unpacks}, \"fused_unpacks\": {fused_unpacks}}}",
                seq_s / fused_s
            ));
        }
    }
    scaling_json.push(']');

    let scan_legacy_bps = total_bases as f64 / legacy_scan_s;
    let scan_packed_bps = total_bases as f64 / packed_scan_s;
    let searched_bases = total_bases as f64 * nqueries as f64;
    let base_bps = searched_bases / base_s;
    let new_bps = searched_bases / new_s;
    // Bytes/second figure used by the serving model: packed on-disk bytes
    // consumed per second of per-query search work.
    let new_bytes_per_s = bytes.len() as f64 * nqueries as f64 / new_s;

    print_table(
        &["stage", "kernel", "time (s)", "Mbases/s", "speedup"],
        &[
            vec![
                "seed scan".into(),
                "legacy (unpack+scan)".into(),
                format!("{legacy_scan_s:.4}"),
                format!("{:.1}", scan_legacy_bps / 1e6),
                "1.00x".into(),
            ],
            vec![
                "seed scan".into(),
                "packed".into(),
                format!("{packed_scan_s:.4}"),
                format!("{:.1}", scan_packed_bps / 1e6),
                format!("{:.2}x", scan_packed_bps / scan_legacy_bps),
            ],
            vec![
                "fragment search".into(),
                "baseline".into(),
                format!("{base_s:.4}"),
                format!("{:.1}", base_bps / 1e6),
                "1.00x".into(),
            ],
            vec![
                "fragment search".into(),
                "packed + workspace".into(),
                format!("{new_s:.4}"),
                format!("{:.1}", new_bps / 1e6),
                format!("{:.2}x", new_bps / base_bps),
            ],
        ],
    );

    println!();
    print_table(
        &[
            "mix",
            "B",
            "sequential (s)",
            "fused (s)",
            "speedup",
            "unpacks f/s",
        ],
        &batch_rows,
    );

    let payload = format!(
        "{{\n  \"experiment\": \"engine\",\n  \"residues\": {},\n  \"nseq\": {},\n  \
         \"stats_residues\": {},\n  \"stats_nseq\": {},\n  \
         \"queries\": {},\n  \"reps\": {},\n  \"seeds\": {},\n  \"hits\": {},\n  \
         \"identical_hits\": true,\n  \
         \"scan\": {{\"legacy_s\": {:.6}, \"packed_s\": {:.6}, \
         \"legacy_bases_per_s\": {:.0}, \"packed_bases_per_s\": {:.0}, \
         \"speedup\": {:.3}}},\n  \
         \"fragment_search\": {{\"baseline_s\": {:.6}, \"packed_s\": {:.6}, \
         \"baseline_bases_per_s\": {:.0}, \"packed_bases_per_s\": {:.0}, \
         \"packed_bytes_per_s\": {:.0}, \"speedup\": {:.3}}},\n  \
         \"batch_scaling\": {scaling_json}\n}}\n",
        volume.residues(),
        volume.sequences.len(),
        db.residues,
        db.nseq,
        nqueries,
        reps,
        packed_seeds,
        nhits,
        legacy_scan_s,
        packed_scan_s,
        scan_legacy_bps,
        scan_packed_bps,
        scan_packed_bps / scan_legacy_bps,
        base_s,
        new_s,
        base_bps,
        new_bps,
        new_bytes_per_s,
        new_bps / base_bps,
    );
    std::fs::write(&out, &payload).expect("write BENCH_engine.json");
    println!(
        "\nwrote {out}\nexpected shape: packed scan beats unpack+scan and the \
         rewritten kernel searches fragments >= 2x faster with identical hits"
    );
}
