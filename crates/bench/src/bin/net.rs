//! Networked serving tier under open-loop Poisson load: N client threads
//! across T tenants hammer a thread-per-core daemon, with one over-quota
//! "hog" tenant that must be the only one shed at saturation. Ends with a
//! graceful drain and asserts zero result loss. Prints the table and
//! writes `BENCH_net.json` for CI.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parblast_bench::{arg_u64, arg_value, print_table};
use parblast_core::hwsim::ArrivalProcess;
use parblast_core::net::{
    ClientConfig, ClientError, EchoRunner, NetClient, NetServer, QuotaConfig, ServerConfig,
    ShedReason,
};
use parblast_core::pvfs::RetryPolicy;
use parblast_core::simcore::{LogHistogram, SimRng};

/// What one client thread observed.
#[derive(Default)]
struct ClientReport {
    tenant: u32,
    offered: u64,
    ok: u64,
    shed_quota: u64,
    shed_draining: u64,
    shed_other: u64,
    io_stopped: u64,
    latencies_us: Vec<u64>,
}

struct Config {
    shards: usize,
    max_batch: usize,
    queue_capacity: usize,
    clients: usize,
    tenants: u32,
    quota_qps: f64,
    hog_factor: f64,
    polite_factor: f64,
    batch_delay: Duration,
    duration: Duration,
    drain_after: Duration,
    seed: u64,
}

fn run_client(
    addr: &str,
    tenant: u32,
    rate_qps: f64,
    duration: Duration,
    stream: u64,
) -> ClientReport {
    let n = (rate_qps * duration.as_secs_f64()).ceil() as usize;
    let arrivals = ArrivalProcess::Poisson { rate_qps }.times(n, &mut SimRng::new(stream));
    let mut report = ClientReport {
        tenant,
        offered: n as u64,
        ..Default::default()
    };
    let client_cfg = ClientConfig {
        tenant,
        retry: RetryPolicy::disabled(),
        ..Default::default()
    };
    let mut client = match NetClient::connect_with(addr, client_cfg) {
        Ok(c) => c,
        Err(_) => {
            report.io_stopped = 1;
            return report;
        }
    };
    let start = Instant::now();
    for (i, at) in arrivals.iter().enumerate() {
        // Open-loop pacing: submit at the scheduled arrival (or immediately
        // if the previous response put us behind schedule).
        let elapsed = start.elapsed().as_secs_f64();
        let due = at.as_secs_f64();
        if due > elapsed {
            std::thread::sleep(Duration::from_secs_f64(due - elapsed));
        }
        let payload = format!("t{tenant}s{stream}q{i}");
        let t0 = Instant::now();
        match client.query(payload.as_bytes()) {
            Ok(bytes) => {
                assert_eq!(
                    bytes,
                    EchoRunner::expected(payload.as_bytes()),
                    "daemon returned wrong bytes for tenant {tenant} query {i}"
                );
                report.ok += 1;
                report.latencies_us.push(t0.elapsed().as_micros() as u64);
            }
            Err(ClientError::Shed {
                reason: ShedReason::QuotaExceeded,
                retry_after_us,
            }) => {
                assert!(
                    retry_after_us > 0,
                    "quota shed must carry a retry-after hint"
                );
                report.shed_quota += 1;
            }
            Err(ClientError::Shed {
                reason: ShedReason::Draining,
                ..
            }) => report.shed_draining += 1,
            Err(ClientError::Shed { .. }) => report.shed_other += 1,
            // The daemon drained and closed the socket: stop offering load.
            Err(ClientError::Io(_)) => {
                report.io_stopped = 1;
                break;
            }
            Err(e) => panic!("unexpected client error: {e:?}"),
        }
    }
    report
}

#[allow(clippy::too_many_arguments)]
fn json(
    cfg: &Config,
    tenant_rows: &[(u32, f64, u64, u64, u64)],
    achieved_qps: f64,
    pct: &parblast_core::simcore::Percentiles,
    shed_rate: f64,
    stats: &parblast_core::net::StatsSnapshot,
    capacity_qps: f64,
    offered_qps: f64,
) -> String {
    let tenants: Vec<String> = tenant_rows
        .iter()
        .map(|(t, rate, ok, shed, offered)| {
            format!(
                "    {{\"tenant\":{t},\"offered_qps\":{rate:.1},\"offered\":{offered},\
                 \"ok\":{ok},\"shed_quota\":{shed}}}"
            )
        })
        .collect();
    let shards: Vec<String> = stats
        .per_shard_served
        .iter()
        .map(|s| s.to_string())
        .collect();
    format!(
        "{{\n  \"experiment\": \"net\",\n  \"shards\": {},\n  \"clients\": {},\n  \
         \"tenants\": {},\n  \"quota_qps\": {:.1},\n  \"hog_factor\": {:.1},\n  \
         \"capacity_qps\": {:.1},\n  \"offered_qps\": {:.1},\n  \
         \"duration_s\": {:.2},\n  \"achieved_qps\": {:.1},\n  \
         \"latency_us\": {{\"p50\":{:.0},\"p95\":{:.0},\"p99\":{:.0}}},\n  \
         \"shed_rate\": {:.4},\n  \"accepted\": {},\n  \"served\": {},\n  \
         \"shed_queue_full\": {},\n  \"shed_quota\": {},\n  \"shed_draining\": {},\n  \
         \"expired\": {},\n  \"cancelled\": {},\n  \"batches\": {},\n  \
         \"per_shard_served\": [{}],\n  \"drain_zero_loss\": true,\n  \
         \"tenants_detail\": [\n{}\n  ]\n}}\n",
        cfg.shards,
        cfg.clients,
        cfg.tenants,
        cfg.quota_qps,
        cfg.hog_factor,
        capacity_qps,
        offered_qps,
        cfg.duration.as_secs_f64(),
        achieved_qps,
        pct.p50,
        pct.p95,
        pct.p99,
        shed_rate,
        stats.accepted,
        stats.served,
        stats.shed_queue_full,
        stats.shed_quota,
        stats.shed_draining,
        stats.expired,
        stats.cancelled,
        stats.batches,
        shards.join(","),
        tenants.join(",\n")
    )
}

fn main() {
    let cfg = Config {
        shards: arg_u64("--shards", 2) as usize,
        max_batch: arg_u64("--max-batch", 4) as usize,
        queue_capacity: arg_u64("--queue-cap", 256) as usize,
        clients: arg_u64("--clients", 8) as usize,
        tenants: arg_u64("--tenants", 4) as u32,
        quota_qps: arg_u64("--quota-qps", 150) as f64,
        hog_factor: arg_u64("--hog-factor", 5) as f64,
        polite_factor: 0.5,
        batch_delay: Duration::from_micros(arg_u64("--batch-delay-us", 2000)),
        duration: Duration::from_millis(arg_u64("--duration-ms", 3000)),
        drain_after: Duration::from_millis(arg_u64("--drain-after-ms", 2500)),
        seed: arg_u64("--seed", 42),
    };
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_net.json".to_string());
    assert!(
        cfg.tenants >= 2,
        "need a hog tenant and at least one polite"
    );
    assert!(cfg.clients >= cfg.tenants as usize, "one client per tenant");

    // EchoRunner capacity: each shard retires one batch per delay.
    let capacity_qps =
        cfg.shards as f64 * cfg.max_batch as f64 / cfg.batch_delay.as_secs_f64().max(1e-9);
    // Tenant 0 offers hog_factor x quota; the others stay politely under.
    // The aggregate must sit below capacity so quota - not the queue - is
    // the only thing shedding.
    let tenant_rate = |t: u32| {
        if t == 0 {
            cfg.quota_qps * cfg.hog_factor
        } else {
            cfg.quota_qps * cfg.polite_factor
        }
    };
    let offered_qps: f64 = (0..cfg.tenants).map(tenant_rate).sum();
    assert!(
        offered_qps < 0.8 * capacity_qps,
        "offered {offered_qps} qps must stay under capacity {capacity_qps} qps"
    );

    let server_cfg = ServerConfig {
        shards: cfg.shards,
        queue_capacity: cfg.queue_capacity,
        max_batch: cfg.max_batch,
        quota: Some(QuotaConfig::per_second(cfg.quota_qps)),
        ..Default::default()
    };
    let runner = Arc::new(EchoRunner::with_delay(cfg.batch_delay));
    let handle = NetServer::start("127.0.0.1:0", server_cfg, runner).expect("start daemon");
    let addr = handle.addr().to_string();
    println!(
        "net daemon on {addr}: {} shards, batch cap {}, {:.0} qps quota/tenant, \
         capacity ~{capacity_qps:.0} qps",
        cfg.shards, cfg.max_batch, cfg.quota_qps
    );
    println!(
        "{} clients x {} tenants, tenant 0 offered {:.0} qps ({}x quota), others {:.0} qps\n",
        cfg.clients,
        cfg.tenants,
        tenant_rate(0),
        cfg.hog_factor,
        tenant_rate(1)
    );

    // Round-robin clients over tenants; split each tenant's offered rate
    // evenly across its clients.
    let clients_for = |t: u32| {
        (0..cfg.clients)
            .filter(|c| (*c as u32) % cfg.tenants == t)
            .count()
    };
    let mut workers = Vec::new();
    for c in 0..cfg.clients {
        let tenant = c as u32 % cfg.tenants;
        let rate = tenant_rate(tenant) / clients_for(tenant) as f64;
        let addr = addr.clone();
        let stream = cfg.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(c as u64 + 1));
        let duration = cfg.duration;
        workers.push(std::thread::spawn(move || {
            run_client(&addr, tenant, rate, duration, stream)
        }));
    }

    // Graceful drain while load is still arriving: every accepted query
    // must still be answered.
    let drain_addr = addr.clone();
    let drain_after = cfg.drain_after;
    let admin = std::thread::spawn(move || {
        std::thread::sleep(drain_after);
        let mut admin = NetClient::connect(&drain_addr).expect("admin connect");
        admin.drain().expect("drain")
    });

    let reports: Vec<ClientReport> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let in_flight_at_drain = admin.join().unwrap();
    let stats = handle.join();

    // --- The contract the bench exists to check -------------------------
    // 1. Zero result loss across drain: every accepted query was answered.
    assert_eq!(
        stats.accepted,
        stats.served + stats.expired + stats.cancelled,
        "drain lost accepted queries"
    );
    let total_ok: u64 = reports.iter().map(|r| r.ok).sum();
    assert_eq!(
        total_ok, stats.served,
        "served results must all reach a client"
    );
    // 2. Per-tenant quotas shed only the over-quota tenant at saturation.
    let mut tenant_rows: Vec<(u32, f64, u64, u64, u64)> = Vec::new();
    for t in 0..cfg.tenants {
        let ok: u64 = reports.iter().filter(|r| r.tenant == t).map(|r| r.ok).sum();
        let shed: u64 = reports
            .iter()
            .filter(|r| r.tenant == t)
            .map(|r| r.shed_quota)
            .sum();
        let offered: u64 = reports
            .iter()
            .filter(|r| r.tenant == t)
            .map(|r| r.offered)
            .sum();
        tenant_rows.push((t, tenant_rate(t), ok, shed, offered));
    }
    assert!(
        tenant_rows[0].3 > 0,
        "hog tenant offered {}x quota but was never shed",
        cfg.hog_factor
    );
    for row in &tenant_rows[1..] {
        assert_eq!(
            row.3, 0,
            "polite tenant {} was quota-shed; quotas must isolate the hog",
            row.0
        );
    }
    assert_eq!(
        stats.shed_quota,
        tenant_rows.iter().map(|r| r.3).sum::<u64>(),
        "server and client quota-shed counts disagree"
    );
    assert_eq!(
        stats.served,
        stats.per_shard_served.iter().sum::<u64>(),
        "per-shard served must sum to the total"
    );

    let mut hist = LogHistogram::new();
    for r in &reports {
        for &us in &r.latencies_us {
            hist.record(us);
        }
    }
    let pct = hist.percentiles();
    let submitted: u64 = reports
        .iter()
        .map(|r| r.ok + r.shed_quota + r.shed_draining + r.shed_other)
        .sum();
    let shed_total = stats.shed_queue_full + stats.shed_quota + stats.shed_draining;
    let shed_rate = shed_total as f64 / (submitted.max(1)) as f64;
    let achieved_qps = total_ok as f64 / cfg.duration.as_secs_f64();

    print_table(
        &["tenant", "offered qps", "submitted", "ok", "quota-shed"],
        &tenant_rows
            .iter()
            .map(|(t, rate, ok, shed, offered)| {
                vec![
                    if *t == 0 {
                        format!("{t} (hog)")
                    } else {
                        t.to_string()
                    },
                    format!("{rate:.0}"),
                    offered.to_string(),
                    ok.to_string(),
                    shed.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nserved {} of {} submitted ({:.1} qps), shed rate {:.1}%, \
         latency p50/p95/p99 = {:.0}/{:.0}/{:.0} us",
        stats.served,
        submitted,
        achieved_qps,
        100.0 * shed_rate,
        pct.p50,
        pct.p95,
        pct.p99
    );
    println!(
        "drain at {:.1}s with {} in flight: accepted {} == served {} + expired {} \
         + cancelled {} (zero loss), per-shard {:?}",
        cfg.drain_after.as_secs_f64(),
        in_flight_at_drain,
        stats.accepted,
        stats.served,
        stats.expired,
        stats.cancelled,
        stats.per_shard_served
    );

    let payload = json(
        &cfg,
        &tenant_rows,
        achieved_qps,
        &pct,
        shed_rate,
        &stats,
        capacity_qps,
        offered_qps,
    );
    std::fs::write(&out, &payload).expect("write BENCH_net.json");
    println!(
        "\nwrote {out}\nexpected shape: only tenant 0 is quota-shed; accepted == \
         served + expired + cancelled across the drain"
    );
}
