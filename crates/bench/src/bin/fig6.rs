//! Figure 6: execution time across worker counts and PVFS data-server
//! counts, with the original scheme as baseline.

use parblast_bench::{arg_u64, print_table};
use parblast_core::experiments::{fig6, NT_BYTES};

fn main() {
    let db = arg_u64("--db-bytes", NT_BYTES);
    let workers = [1u32, 2, 4, 8];
    let servers = [1u32, 2, 4, 6, 8, 12, 16];
    let cells = fig6(&workers, &servers, db);
    println!("Figure 6: execution time (s) vs number of PVFS data servers");
    println!(
        "database: {:.2} GB; 'orig' = original scheme baseline\n",
        db as f64 / 1e9
    );
    let mut headers: Vec<String> = vec!["workers".into(), "orig".into()];
    headers.extend(servers.iter().map(|s| format!("s={s}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    for &w in &workers {
        let mut row = vec![w.to_string()];
        let base = cells
            .iter()
            .find(|c| c.workers == w && c.servers == 0)
            .unwrap();
        row.push(format!("{:.1}", base.t));
        for &s in &servers {
            let c = cells
                .iter()
                .find(|c| c.workers == w && c.servers == s)
                .unwrap();
            row.push(format!("{:.1}", c.t));
        }
        rows.push(row);
    }
    print_table(&headers_ref, &rows);
    // §4.3 in-text claim: I/O ≈ 11 % of execution, original, 2 workers.
    if let Some(c) = cells.iter().find(|c| c.workers == 2 && c.servers == 0) {
        println!(
            "\nI/O fraction (original, 2 workers): {:.1}%  (paper: ~11%)",
            c.io_fraction * 100.0
        );
    }
    println!("expected shape: times fall with servers, flatten by ~4-8, no gain (or slight loss) at 12-16");
}
