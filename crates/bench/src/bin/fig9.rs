//! Figure 9: all three schemes with one data-server disk stressed by the
//! Figure 8 program (8 workers, 8 data servers).

use parblast_bench::{arg_u64, print_table};
use parblast_core::experiments::{fig9, NT_BYTES};

fn main() {
    let db = arg_u64("--db-bytes", NT_BYTES);
    let rows = fig9(db);
    println!("Figure 9: one disk stressed (Figure 8 program), 8 workers / 8 servers");
    println!("database: {:.2} GB\n", db as f64 / 1e9);
    print_table(
        &[
            "scheme",
            "no stress (s)",
            "stressed (s)",
            "factor",
            "paper factor",
            "skipped parts",
        ],
        &rows
            .iter()
            .map(|r| {
                let paper = match r.scheme {
                    "original" => "10x",
                    "over-PVFS" => "21x",
                    _ => "2x",
                };
                vec![
                    r.scheme.to_string(),
                    format!("{:.1}", r.t_clean),
                    format!("{:.1}", r.t_stressed),
                    format!("{:.1}x", r.factor),
                    paper.into(),
                    r.skipped_parts.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\nexpected shape: PVFS >> original >> CEFT degradation; CEFT skips the hot server");
}
