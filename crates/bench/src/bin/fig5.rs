//! Figure 5: original vs over-PVFS under equal resources
//! (nodes serve as both workers and data servers).

use parblast_bench::{arg_u64, print_table};
use parblast_core::experiments::{fig5, NT_BYTES};

fn main() {
    let db = arg_u64("--db-bytes", NT_BYTES);
    let rows = fig5(&[1, 2, 4, 8], db);
    println!("Figure 5: execution time, original vs over-PVFS (same resources)");
    println!(
        "database: {:.2} GB (copy time excluded from the original, as in the paper)\n",
        db as f64 / 1e9
    );
    print_table(
        &["nodes", "original (s)", "over-PVFS (s)", "PVFS/orig"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.nodes.to_string(),
                    format!("{:.1}", r.t_original),
                    format!("{:.1}", r.t_pvfs),
                    format!("{:.3}", r.t_pvfs / r.t_original),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\nexpected shape: PVFS loses at 1 node, wins at 2-8 with shrinking gain");
}
