//! Regenerate every experiment in one go and print the full
//! paper-vs-measured record (the data behind EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p parblast-bench --bin run_all [--db-bytes N] [--residues N]
//! ```

use parblast_bench::{arg_u64, print_table};
use parblast_core::experiments::*;

fn main() {
    let db = arg_u64("--db-bytes", NT_BYTES);
    let residues = arg_u64("--residues", 64 << 20);

    println!("=== Calibration (paper §4.1) ===\n");
    let c = calibration();
    print_table(
        &["metric", "paper", "simulated"],
        &[
            vec![
                "disk write MB/s".into(),
                "32".into(),
                format!("{:.1}", c.disk_write_mbs),
            ],
            vec![
                "disk read MB/s".into(),
                "26".into(),
                format!("{:.1}", c.disk_read_mbs),
            ],
            vec![
                "TCP MB/s".into(),
                "~112".into(),
                format!("{:.1}", c.net_mbs),
            ],
            vec![
                "TCP CPU".into(),
                "47%".into(),
                format!("{:.0}%", c.net_cpu_fraction * 100.0),
            ],
        ],
    );

    println!("\n=== Figure 4 (real run, scaled database) ===\n");
    let dir = std::env::temp_dir().join(format!("parblast_runall_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("workdir");
    let f4 = fig4(&dir, residues).expect("fig4");
    let s = &f4.summary;
    println!(
        "ops={} reads={:.0}% read sizes {}B..{:.1}MB mean {:.2}MB; writes {}..{}B; hits={}",
        s.ops,
        s.read_fraction * 100.0,
        s.read_min,
        s.read_max as f64 / 1e6,
        s.read_mean / 1e6,
        s.write_min,
        s.write_max,
        f4.hits
    );
    std::fs::remove_dir_all(&dir).ok();

    println!("\n=== Figure 5 (same resources) ===\n");
    let rows = fig5(&[1, 2, 4, 8], db);
    print_table(
        &["nodes", "original(s)", "PVFS(s)", "gain(s)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.nodes.to_string(),
                    format!("{:.1}", r.t_original),
                    format!("{:.1}", r.t_pvfs),
                    format!("{:+.1}", r.t_original - r.t_pvfs),
                ]
            })
            .collect::<Vec<_>>(),
    );

    println!("\n=== Figure 6 (server sweep) ===\n");
    let workers = [1u32, 2, 4, 8];
    let servers = [1u32, 2, 4, 6, 8, 12, 16];
    let cells = fig6(&workers, &servers, db);
    let mut headers: Vec<String> = vec!["workers".into(), "orig".into()];
    headers.extend(servers.iter().map(|s| format!("s={s}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    for &w in &workers {
        let mut row = vec![w.to_string()];
        for s in std::iter::once(0u32).chain(servers.iter().copied()) {
            let cell = cells
                .iter()
                .find(|c| c.workers == w && c.servers == s)
                .unwrap();
            row.push(format!("{:.1}", cell.t));
        }
        rows.push(row);
    }
    print_table(&headers_ref, &rows);
    if let Some(c2) = cells.iter().find(|c| c.workers == 2 && c.servers == 0) {
        println!(
            "\nI/O fraction (original, 2 workers): {:.1}% (paper ~11%)",
            c2.io_fraction * 100.0
        );
    }

    println!("\n=== Figure 7 (PVFS 8 vs CEFT 4+4) ===\n");
    let rows = fig7(&[1, 2, 4, 8], db);
    print_table(
        &["workers", "PVFS(s)", "CEFT(s)", "CEFT/PVFS"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workers.to_string(),
                    format!("{:.1}", r.t_pvfs),
                    format!("{:.1}", r.t_ceft),
                    format!("{:.3}", r.t_ceft / r.t_pvfs),
                ]
            })
            .collect::<Vec<_>>(),
    );

    println!("\n=== Figure 9 (one stressed disk) ===\n");
    let rows = fig9(db);
    print_table(
        &[
            "scheme",
            "clean(s)",
            "stressed(s)",
            "factor",
            "paper",
            "skips",
        ],
        &rows
            .iter()
            .map(|r| {
                let paper = match r.scheme {
                    "original" => "10x",
                    "over-PVFS" => "21x",
                    _ => "2x",
                };
                vec![
                    r.scheme.to_string(),
                    format!("{:.1}", r.t_clean),
                    format!("{:.1}", r.t_stressed),
                    format!("{:.1}x", r.factor),
                    paper.into(),
                    r.skipped_parts.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
