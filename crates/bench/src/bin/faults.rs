//! Fault-tolerance experiment: crash one data server mid-search and
//! compare completion behavior across the three schemes (8 workers; PVFS
//! on 8 servers, CEFT on 4+4 with mirroring).

use parblast_bench::{arg_u64, print_table};
use parblast_core::experiments::{faults, NT_BYTES};

fn main() {
    let db = arg_u64("--db-bytes", NT_BYTES);
    // Failure times spanning the job (clean makespan ≈160–180 s at full
    // scale): early, middle, and near the end.
    let fail_times: Vec<f64> = match arg_u64("--fail-at-s", 0) {
        0 => vec![30.0, 80.0, 140.0],
        s => vec![s as f64],
    };
    let rows = faults(db, &fail_times);
    println!("Faults: data server 1 crashes mid-search (8 workers / 8 data servers)");
    println!("database: {:.2} GB\n", db as f64 / 1e9);
    print_table(
        &[
            "scheme",
            "fail at (s)",
            "clean (s)",
            "faulted (s)",
            "outcome",
            "retries",
            "failovers",
        ],
        &rows
            .iter()
            .map(|r| {
                let outcome = if r.completed {
                    "completed".to_string()
                } else {
                    match &r.error {
                        Some(e) => format!("FAILED: {e}"),
                        None => "HUNG (horizon)".to_string(),
                    }
                };
                vec![
                    r.scheme.to_string(),
                    format!("{:.0}", r.fail_at_s),
                    format!("{:.1}", r.t_clean),
                    format!("{:.1}", r.t_faulted),
                    outcome,
                    r.retries.to_string(),
                    r.failovers.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nexpected shape: original unaffected; PVFS aborts with a reported I/O \
         error; CEFT completes via mirror failover at ~halved read parallelism"
    );
}
