//! Prefetch-pipeline benchmark: measures how much fragment I/O the
//! double-buffered runner hides behind compute, against the sequential
//! fetch-then-search loop, on real files with the stores throttled to the
//! paper's ~28 MB/s disks (unthrottled, everything is served from the page
//! cache and there is nothing to hide).
//!
//! Three measurements:
//!
//! * **reader-pool microbench** — `read_at` latency through the persistent
//!   per-server lanes vs the pre-pool design that spawned one OS thread
//!   per involved server on every call.
//! * **pipeline sweep** — the real runner, prefetch on/off × scheme
//!   (original / PVFS / CEFT-PVFS) × workers, hit-for-hit identity
//!   asserted for every timed run. Reports wall time, the fetch and stall
//!   clocks, and the I/O-hidden fraction `1 - stall/fetch`.
//! * **simulated read-ahead ablation** — the paper-scale simulator at
//!   depths 0/1/2/4 (depth 0 is the calibrated synchronous default).
//!
//! Writes `BENCH_pipeline.json` (CI archives it).

use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use parblast_bench::{arg_u64, arg_value, print_table};
use parblast_blast::{DbStats, Program, SearchParams};
use parblast_core::experiments::read_ahead_ablation;
use parblast_core::mpiblast::{ParallelBlast, Parallelization, Scheme, Tracer};
use parblast_core::pio::{read_all, ObjectStore, StripeLayout, StripedStore};
use parblast_seqdb::blastdb::SeqType;
use parblast_seqdb::{extract_query, segment_into_fragments, SyntheticConfig, SyntheticNt};

/// Median of a sample of seconds.
fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

// ---------------------------------------------------------- pool microbench

/// µs/op for striped reads of `len` bytes: the pool-backed store vs a
/// spawn-per-call scatter over the same pre-opened stripe files (what
/// every `read_at` did before the persistent lanes existed).
fn pool_microbench(base: &Path, len: usize, ops: usize) -> (f64, f64) {
    let servers = 4usize;
    let stripe = 64u64 << 10;
    let dirs: Vec<_> = (0..servers).map(|i| base.join(format!("s{i}"))).collect();
    let st = StripedStore::new(dirs.clone(), stripe).expect("striped store");
    let object_len = (len * 8) as u64;
    let payload: Vec<u8> = (0..object_len).map(|i| (i * 31 % 251) as u8).collect();
    st.put("obj", &payload).expect("put");

    let mut reader = st.open("obj").expect("open");
    let mut buf = vec![0u8; len];
    let offset_of = |i: usize| (i as u64 * 13_001) % (object_len - len as u64);

    // Pool path: the store's persistent lanes.
    reader.read_at(0, &mut buf).expect("warm");
    let t0 = Instant::now();
    for i in 0..ops {
        reader.read_at(offset_of(i), &mut buf).expect("pool read");
    }
    let pool_us = t0.elapsed().as_secs_f64() * 1e6 / ops as f64;

    // Baseline: one scoped OS thread per involved server per call, over
    // files opened once up front — isolating pure spawn/join cost.
    let layout = StripeLayout::new(stripe, servers as u32);
    let files: Vec<Arc<std::fs::File>> = dirs
        .iter()
        .map(|d| Arc::new(std::fs::File::open(d.join("obj")).expect("stripe file")))
        .collect();
    let spawn_read = |offset: u64, buf: &mut [u8]| {
        let parts = layout.map_extent(offset, buf.len() as u64);
        let mut chunks: Vec<Vec<u8>> = Vec::with_capacity(parts.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter()
                .map(|p| {
                    let f = Arc::clone(&files[p.server as usize]);
                    let (lo, n) = (p.local_offset, p.len as usize);
                    s.spawn(move || {
                        let mut out = vec![0u8; n];
                        f.read_exact_at(&mut out, lo).expect("pread");
                        out
                    })
                })
                .collect();
            for h in handles {
                chunks.push(h.join().expect("join"));
            }
        });
        // Scatter back into logical order, one stripe segment at a time.
        let mut consumed = vec![0usize; servers];
        let mut pos = offset;
        let end = offset + buf.len() as u64;
        while pos < end {
            let seg_end = ((pos / stripe + 1) * stripe).min(end);
            let n = (seg_end - pos) as usize;
            let srv = layout.server_of(pos) as usize;
            let part_idx = parts
                .iter()
                .position(|p| p.server as usize == srv)
                .expect("server in extent");
            let data = &chunks[part_idx];
            let dst = (pos - offset) as usize;
            buf[dst..dst + n].copy_from_slice(&data[consumed[srv]..consumed[srv] + n]);
            consumed[srv] += n;
            pos = seg_end;
        }
    };
    spawn_read(0, &mut buf);
    let t0 = Instant::now();
    for i in 0..ops {
        spawn_read(offset_of(i), &mut buf);
    }
    let spawn_us = t0.elapsed().as_secs_f64() * 1e6 / ops as f64;

    // Both paths read the same bytes.
    let mut a = vec![0u8; len];
    reader.read_at(offset_of(3), &mut a).expect("check");
    let mut b = vec![0u8; len];
    spawn_read(offset_of(3), &mut b);
    assert_eq!(a, b, "pool and spawn baseline disagree");
    assert_eq!(read_all(&st, "obj").expect("read_all"), payload);

    (spawn_us, pool_us)
}

// ------------------------------------------------------------ runner sweep

struct Cell {
    scheme: &'static str,
    workers: usize,
    prefetch: bool,
    wall_s: f64,
    io_fetch_s: f64,
    io_stall_s: f64,
    hidden: f64,
}

fn main() {
    let residues = arg_u64("--residues", 32 << 20);
    let reps = arg_u64("--reps", 7) as usize;
    // Default 5 MB/s per server: the paper's disks stream ~26 MB/s raw but
    // deliver far less under striped seek+network cost; more importantly
    // the sweep needs I/O and compute of the same order, or there is
    // nothing measurable to hide at this (scaled-down) database size.
    let throttle = arg_u64("--throttle", 5_000_000);
    let sim_bytes = arg_u64("--sim-bytes", 128 << 20);
    let pool_ops = arg_u64("--pool-ops", 200) as usize;
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let base = std::env::temp_dir().join(format!("parblast_pipeline_{}", std::process::id()));
    std::fs::create_dir_all(&base).expect("workdir");

    // --- reader-pool microbench -----------------------------------------
    let (spawn_64k, pool_64k) = pool_microbench(&base.join("mb64k"), 64 << 10, pool_ops);
    let (spawn_2m, pool_2m) = pool_microbench(&base.join("mb2m"), 2 << 20, pool_ops.min(64));
    println!("reader-pool microbench: 4 servers, 64 KiB stripes, striped read_at\n");
    print_table(
        &[
            "read size",
            "spawn-per-call (µs/op)",
            "pool lanes (µs/op)",
            "speedup",
        ],
        &[
            vec![
                "64 KiB".into(),
                format!("{spawn_64k:.1}"),
                format!("{pool_64k:.1}"),
                format!("{:.2}x", spawn_64k / pool_64k),
            ],
            vec![
                "2 MiB".into(),
                format!("{spawn_2m:.1}"),
                format!("{pool_2m:.1}"),
                format!("{:.2}x", spawn_2m / pool_2m),
            ],
        ],
    );

    // --- real-runner pipeline sweep -------------------------------------
    let mut g = SyntheticNt::new(SyntheticConfig {
        total_residues: residues,
        seed: 11,
        ..Default::default()
    });
    let mut seqs = vec![];
    while let Some(x) = g.next() {
        seqs.push(x);
    }
    let query = extract_query(&seqs[2].1, 568, 0.02, 5);
    let db = DbStats {
        residues: g.residues(),
        nseq: g.sequences(),
    };
    let nfrag = 8u32;
    let infos = segment_into_fragments(&base.join("fmt"), "nt", SeqType::Nucleotide, nfrag, seqs)
        .expect("segment");
    let frag_bytes: Vec<(String, Vec<u8>)> = infos
        .iter()
        .map(|info| {
            (
                info.path
                    .file_name()
                    .unwrap()
                    .to_string_lossy()
                    .into_owned(),
                std::fs::read(&info.path).expect("fragment bytes"),
            )
        })
        .collect();

    // Each cell gets a freshly-built scheme (fresh server directories and,
    // for CEFT, a fresh health monitor): the mirrored store's latency EWMA
    // adapts to observed queueing, so sharing one store across cells would
    // leak one configuration's training into the next. CEFT uses the
    // paper's 4 data + 4 mirror servers against PVFS's 4 unmirrored ones.
    let schemes: [&'static str; 3] = ["original", "pvfs", "ceft"];
    let make_scheme = |name: &str, root: &Path| -> Scheme {
        let scheme = match name {
            "original" => Scheme::local_at(root, 4).expect("local"),
            "pvfs" => Scheme::pvfs_at(root, 4, 64 << 10).expect("pvfs"),
            _ => Scheme::ceft_at(root, 4, 64 << 10).expect("ceft"),
        };
        for (frag, bytes) in &frag_bytes {
            scheme.load_fragment(frag, bytes).expect("load fragment");
        }
        scheme.set_io_throttle(throttle);
        scheme
    };
    println!(
        "\npipeline sweep: {:.1} Mbase db, {nfrag} fragments, 568-nt query, \
         stores throttled to {:.0} MB/s per server, median of {reps} interleaved reps\n",
        residues as f64 / 1e6,
        throttle as f64 / 1e6,
    );

    let fragments: Vec<String> = frag_bytes.iter().map(|(n, _)| n.clone()).collect();
    let mut cells: Vec<Cell> = Vec::new();
    let mut reference_hits: Option<String> = None;
    for name in &schemes {
        for &workers in &[2usize, 4] {
            let root = base.join(format!("{name}_{workers}"));
            let scheme = make_scheme(name, &root);
            let run = |prefetch: bool| {
                ParallelBlast {
                    program: Program::Blastn,
                    params: SearchParams::blastn(),
                    db,
                    fragments: fragments.clone(),
                    workers,
                    scheme: scheme.clone(),
                    tracer: Tracer::disabled(),
                    parallelization: Parallelization::DatabaseSegmentation,
                    prefetch,
                    list_io: false,
                }
                .run(&query)
                .expect("run")
            };
            // One warmup pair, then off/on interleaved rep by rep: slow
            // drift (CPU frequency, container neighbors) hits both arms
            // equally instead of biasing whichever ran last.
            let _ = run(false);
            let _ = run(true);
            let (mut t_off, mut t_on) = (Vec::new(), Vec::new());
            let (mut last_off, mut last_on) = (None, None);
            for _ in 0..reps {
                let t0 = Instant::now();
                last_off = Some(run(false));
                t_off.push(t0.elapsed().as_secs_f64());
                let t0 = Instant::now();
                last_on = Some(run(true));
                t_on.push(t0.elapsed().as_secs_f64());
            }
            let arms = [
                (false, t_off, last_off.expect("reps >= 1")),
                (true, t_on, last_on.expect("reps >= 1")),
            ];
            for (prefetch, times, last) in arms {
                // Every configuration must report the same merged hits.
                let key = format!("{:?}", last.hits);
                match &reference_hits {
                    None => {
                        assert!(!last.hits.is_empty(), "planted query must be found");
                        reference_hits = Some(key);
                    }
                    Some(r) => assert_eq!(
                        r, &key,
                        "{name} workers={workers} prefetch={prefetch} changed the hits"
                    ),
                }
                let hidden = if last.io_fetch_s > 0.0 {
                    (1.0 - last.io_stall_s / last.io_fetch_s).max(0.0)
                } else {
                    0.0
                };
                cells.push(Cell {
                    scheme: name,
                    workers,
                    prefetch,
                    wall_s: median(times),
                    io_fetch_s: last.io_fetch_s,
                    io_stall_s: last.io_stall_s,
                    hidden,
                });
            }
            std::fs::remove_dir_all(&root).ok();
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.scheme.into(),
                format!("{}", c.workers),
                if c.prefetch { "on" } else { "off" }.into(),
                format!("{:.4}", c.wall_s),
                format!("{:.4}", c.io_fetch_s),
                format!("{:.4}", c.io_stall_s),
                format!("{:.0}%", c.hidden * 100.0),
            ]
        })
        .collect();
    print_table(
        &[
            "scheme",
            "workers",
            "prefetch",
            "wall (s)",
            "fetch (s)",
            "stall (s)",
            "I/O hidden",
        ],
        &rows,
    );

    // The point of the pipeline: for the parallel-I/O schemes, overlapping
    // fetch with search must strictly beat the sequential loop.
    println!();
    for name in &schemes {
        for &workers in &[2usize, 4] {
            let find = |prefetch| {
                cells
                    .iter()
                    .find(|c| c.scheme == *name && c.workers == workers && c.prefetch == prefetch)
                    .expect("cell")
            };
            let (off, on) = (find(false), find(true));
            let speedup = off.wall_s / on.wall_s;
            println!(
                "{name} workers={workers}: prefetch {:.4}s -> {:.4}s ({speedup:.2}x, \
                 {:.0}% of I/O hidden)",
                off.wall_s,
                on.wall_s,
                on.hidden * 100.0
            );
            if *name != "original" {
                assert!(
                    on.wall_s < off.wall_s,
                    "{name} workers={workers}: prefetch must strictly win \
                     ({:.4}s vs {:.4}s)",
                    on.wall_s,
                    off.wall_s
                );
            }
        }
    }

    // --- simulated read-ahead ablation ----------------------------------
    let depths = [0u32, 1, 2, 4];
    let ablation = read_ahead_ablation(sim_bytes, &depths);
    println!(
        "\nsimulated read-ahead ablation ({} MB database, paper-scale model):\n",
        sim_bytes >> 20
    );
    print_table(
        &["scheme", "depth", "makespan (s)", "speedup vs depth 0"],
        &ablation
            .iter()
            .map(|c| {
                vec![
                    c.scheme.into(),
                    format!("{}", c.depth),
                    format!("{:.2}", c.makespan_s),
                    format!("{:.3}x", c.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // --- JSON artifact ---------------------------------------------------
    let cell_json: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"scheme\": \"{}\", \"workers\": {}, \"prefetch\": {}, \
                 \"wall_s\": {:.6}, \"io_fetch_s\": {:.6}, \"io_stall_s\": {:.6}, \
                 \"io_hidden_fraction\": {:.4}}}",
                c.scheme, c.workers, c.prefetch, c.wall_s, c.io_fetch_s, c.io_stall_s, c.hidden
            )
        })
        .collect();
    let ablation_json: Vec<String> = ablation
        .iter()
        .map(|c| {
            format!(
                "    {{\"scheme\": \"{}\", \"depth\": {}, \"makespan_s\": {:.4}, \
                 \"speedup\": {:.4}}}",
                c.scheme, c.depth, c.makespan_s, c.speedup
            )
        })
        .collect();
    let payload = format!(
        "{{\n  \"experiment\": \"pipeline\",\n  \"residues\": {residues},\n  \
         \"fragments\": {nfrag},\n  \"reps\": {reps},\n  \
         \"throttle_bytes_per_s\": {throttle},\n  \"identical_hits\": true,\n  \
         \"pool_microbench\": {{\n    \
         \"read_64k\": {{\"spawn_us_per_op\": {spawn_64k:.1}, \"pool_us_per_op\": {pool_64k:.1}, \
         \"speedup\": {:.3}}},\n    \
         \"read_2m\": {{\"spawn_us_per_op\": {spawn_2m:.1}, \"pool_us_per_op\": {pool_2m:.1}, \
         \"speedup\": {:.3}}}\n  }},\n  \
         \"sweep\": [\n{}\n  ],\n  \
         \"sim_read_ahead\": {{\"db_bytes\": {sim_bytes}, \"cells\": [\n{}\n  ]}}\n}}\n",
        spawn_64k / pool_64k,
        spawn_2m / pool_2m,
        cell_json.join(",\n"),
        ablation_json.join(",\n"),
    );
    std::fs::write(&out, &payload).expect("write BENCH_pipeline.json");
    println!(
        "\nwrote {out}\nexpected shape: prefetch strictly beats sequential fetch for the \
         parallel-I/O schemes with identical hits, and the pool beats spawn-per-call"
    );
    std::fs::remove_dir_all(&base).ok();
}
