//! List-I/O aggregation benchmark: one vectored request per server
//! instead of one request per stripe-sized chunk.
//!
//! Two measurements:
//!
//! * **simulated sweep** — the paper-scale simulator, PVFS and CEFT-PVFS,
//!   workers × list I/O on/off. Reports the per-server request count
//!   (the iods' own accounting), the aggregated-list region totals, the
//!   read-latency p95 the clients observed, and the makespan. Bytes read
//!   are asserted identical between the arms.
//! * **real sweep** — actual striped/mirrored stores, N worker threads
//!   each issuing multi-stripe fragment reads as per-region `read_at`
//!   loops vs one vectored `read_many_at`. Reports reader-pool jobs
//!   submitted (one per request at a PVFS I/O daemon) and the per-read
//!   p95, with byte-identical results asserted.
//!
//! Writes `BENCH_listio.json` (CI archives it). The headline number is
//! the request-count collapse: ≥ 5x for multi-stripe fragment reads at
//! 4+ workers, in both the simulated and the real path.

use std::path::Path;
use std::time::Instant;

use parblast_bench::{arg_u64, arg_value, print_table};
use parblast_core::mpiblast::{run_simblast, SimBlastConfig, SimScheme};
use parblast_core::pio::{MirroredStore, ObjectStore, StripedStore};

/// p95 of a latency sample, in microseconds.
fn p95_us(mut lat: Vec<f64>) -> f64 {
    lat.sort_by(f64::total_cmp);
    let idx = ((lat.len() as f64 * 0.95).ceil() as usize).saturating_sub(1);
    lat[idx] * 1e6
}

// ---------------------------------------------------------- simulated sweep

struct SimCell {
    scheme: &'static str,
    workers: u32,
    list_io: bool,
    server_reads: u64,
    list_regions: u64,
    read_p95_us: f64,
    makespan_s: f64,
}

fn sim_sweep(db_bytes: u64, chunk: u64, worker_counts: &[u32]) -> Vec<SimCell> {
    let mut cells = Vec::new();
    for &workers in worker_counts {
        for (name, scheme) in [
            (
                "pvfs",
                SimScheme::Pvfs {
                    servers: vec![0, 1, 2, 3],
                },
            ),
            (
                "ceft",
                SimScheme::Ceft {
                    primary: vec![0, 1],
                    mirror: vec![2, 3],
                },
            ),
        ] {
            let mut bytes = [0u64; 2];
            for list_io in [false, true] {
                // At least 5 nodes: the 4 data servers live on nodes 0-3
                // and the master gets the last node.
                let nodes = (workers as usize + 1).max(5);
                let cfg = SimBlastConfig {
                    nodes,
                    workers,
                    fragments: workers,
                    db_bytes,
                    chunk,
                    scheme: scheme.clone(),
                    list_io,
                    master_node: nodes as u32 - 1,
                    warmup_s: 1.0,
                    horizon_s: 2000.0,
                    ..Default::default()
                };
                let out = run_simblast(&cfg);
                assert!(
                    out.completed,
                    "{name} workers={workers} list_io={list_io}: {:?}",
                    out.error
                );
                bytes[list_io as usize] = out.per_worker.iter().map(|w| w.bytes_read).sum();
                cells.push(SimCell {
                    scheme: name,
                    workers,
                    list_io,
                    server_reads: out.server_reads,
                    list_regions: out.server_list_regions,
                    read_p95_us: out.read_latency_us.p95,
                    makespan_s: out.makespan_s,
                });
            }
            assert_eq!(
                bytes[0], bytes[1],
                "{name} workers={workers}: list I/O changed the bytes read"
            );
        }
    }
    cells
}

// --------------------------------------------------------------- real sweep

struct RealCell {
    scheme: &'static str,
    workers: usize,
    list_io: bool,
    requests: u64,
    read_p95_us: f64,
}

/// `iters` fragment reads per worker thread; each fragment read covers
/// `regions_per_read` regions of `region_len` bytes, either as a
/// per-region `read_at` loop (list off) or one `read_many_at` (list on).
#[allow(clippy::too_many_arguments)]
fn real_arm<S: ObjectStore + Sync>(
    store: &S,
    requests_before: u64,
    requests_after: impl Fn() -> u64,
    workers: usize,
    iters: usize,
    object_len: u64,
    regions_per_read: usize,
    region_len: u64,
    list_io: bool,
) -> (u64, f64, u64) {
    let lats = std::sync::Mutex::new(Vec::new());
    let checksum = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in 0..workers {
            let lats = &lats;
            let checksum = &checksum;
            s.spawn(move || {
                let mut reader = store.open("frag").expect("open");
                let mut local = Vec::with_capacity(iters);
                let mut sum = 0u64;
                for i in 0..iters {
                    // A multi-stripe fragment read: regions marching
                    // through the object at a worker-dependent phase.
                    let span = regions_per_read as u64 * region_len;
                    let base = ((w * iters + i) as u64 * 7919 * region_len) % (object_len - span);
                    let regions: Vec<(u64, u64)> = (0..regions_per_read)
                        .map(|r| (base + r as u64 * region_len, region_len))
                        .collect();
                    let t0 = Instant::now();
                    let data = if list_io {
                        reader.read_many_at(&regions).expect("read_many_at")
                    } else {
                        let mut out = Vec::with_capacity(span as usize);
                        let mut buf = vec![0u8; region_len as usize];
                        for &(off, len) in &regions {
                            buf.resize(len as usize, 0);
                            reader.read_at(off, &mut buf).expect("read_at");
                            out.extend_from_slice(&buf);
                        }
                        out
                    };
                    local.push(t0.elapsed().as_secs_f64());
                    sum = sum.wrapping_add(
                        data.iter()
                            .fold(0u64, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64)),
                    );
                }
                checksum.fetch_add(sum, std::sync::atomic::Ordering::Relaxed);
                lats.lock().unwrap().append(&mut local);
            });
        }
    });
    let requests = requests_after() - requests_before;
    (
        requests,
        p95_us(lats.into_inner().unwrap()),
        checksum.into_inner(),
    )
}

fn real_sweep(
    base: &Path,
    worker_counts: &[usize],
    iters: usize,
    object_len: u64,
    regions_per_read: usize,
    region_len: u64,
) -> Vec<RealCell> {
    let stripe = 64u64 << 10;
    let payload: Vec<u8> = (0..object_len).map(|i| (i * 31 % 251) as u8).collect();
    let sdirs: Vec<_> = (0..4).map(|i| base.join(format!("s{i}"))).collect();
    let striped = StripedStore::new(sdirs, stripe).expect("striped");
    striped.put("frag", &payload).expect("put");
    let p: Vec<_> = (0..2).map(|i| base.join(format!("p{i}"))).collect();
    let m: Vec<_> = (0..2).map(|i| base.join(format!("m{i}"))).collect();
    let mirrored = MirroredStore::new(p, m, stripe).expect("mirrored");
    mirrored.put("frag", &payload).expect("put");

    let mut cells = Vec::new();
    for &workers in worker_counts {
        for (name, is_striped) in [("pvfs", true), ("ceft", false)] {
            let mut sums = [0u64; 2];
            for list_io in [false, true] {
                let (requests, p95, sum) = if is_striped {
                    real_arm(
                        &striped,
                        striped.server_requests(),
                        || striped.server_requests(),
                        workers,
                        iters,
                        object_len,
                        regions_per_read,
                        region_len,
                        list_io,
                    )
                } else {
                    real_arm(
                        &mirrored,
                        mirrored.server_requests(),
                        || mirrored.server_requests(),
                        workers,
                        iters,
                        object_len,
                        regions_per_read,
                        region_len,
                        list_io,
                    )
                };
                sums[list_io as usize] = sum;
                cells.push(RealCell {
                    scheme: name,
                    workers,
                    list_io,
                    requests,
                    read_p95_us: p95,
                });
            }
            assert_eq!(
                sums[0], sums[1],
                "{name} workers={workers}: list I/O changed the bytes read"
            );
        }
    }
    cells
}

// ------------------------------------------------------------------- main

fn main() {
    let sim_bytes = arg_u64("--sim-bytes", 256 << 20);
    // 4 MiB application chunks: a 4-worker run reads 64 MiB fragments as
    // 16-region lists, so aggregation has ≥ 5x to collapse at every
    // worker count in the sweep.
    let sim_chunk = arg_u64("--sim-chunk", 4 << 20);
    let iters = arg_u64("--iters", 40) as usize;
    let object_len = arg_u64("--object-bytes", 8 << 20);
    let regions_per_read = arg_u64("--regions", 16) as usize;
    let region_len = arg_u64("--region-bytes", 128 << 10);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_listio.json".to_string());
    let base = std::env::temp_dir().join(format!("parblast_listio_{}", std::process::id()));
    std::fs::create_dir_all(&base).expect("workdir");

    // --- simulated sweep -------------------------------------------------
    let sim_workers = [2u32, 4, 8];
    let sim = sim_sweep(sim_bytes, sim_chunk, &sim_workers);
    println!(
        "simulated list-I/O sweep: {} MiB database, {} MiB chunks, 4 data servers\n",
        sim_bytes >> 20,
        sim_chunk >> 20
    );
    print_table(
        &[
            "scheme",
            "workers",
            "list I/O",
            "server requests",
            "list regions",
            "read p95 (µs)",
            "makespan (s)",
        ],
        &sim.iter()
            .map(|c| {
                vec![
                    c.scheme.into(),
                    format!("{}", c.workers),
                    if c.list_io { "on" } else { "off" }.into(),
                    format!("{}", c.server_reads),
                    format!("{}", c.list_regions),
                    // Only the CEFT client keeps a read-latency histogram.
                    if c.read_p95_us > 0.0 {
                        format!("{:.0}", c.read_p95_us)
                    } else {
                        "-".into()
                    },
                    format!("{:.2}", c.makespan_s),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // --- real sweep ------------------------------------------------------
    let real_workers = [2usize, 4, 8];
    let real = real_sweep(
        &base,
        &real_workers,
        iters,
        object_len,
        regions_per_read,
        region_len,
    );
    println!(
        "\nreal list-I/O sweep: {} MiB object, 64 KiB stripes, {} regions × {} KiB \
         per fragment read, {} reads per worker\n",
        object_len >> 20,
        regions_per_read,
        region_len >> 10,
        iters
    );
    print_table(
        &[
            "scheme",
            "workers",
            "list I/O",
            "pool jobs",
            "read p95 (µs)",
        ],
        &real
            .iter()
            .map(|c| {
                vec![
                    c.scheme.into(),
                    format!("{}", c.workers),
                    if c.list_io { "on" } else { "off" }.into(),
                    format!("{}", c.requests),
                    format!("{:.0}", c.read_p95_us),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // --- collapse headline ----------------------------------------------
    println!();
    let mut lines = Vec::new();
    for (which, pairs) in [
        ("sim", &sim_collapse(&sim)),
        ("real", &real_collapse(&real)),
    ] {
        for &(scheme, workers, off, on) in pairs {
            let collapse = off as f64 / on as f64;
            println!(
                "{which} {scheme} workers={workers}: {off} -> {on} requests \
                 ({collapse:.1}x collapse)"
            );
            if workers >= 4 {
                assert!(
                    collapse >= 5.0,
                    "{which} {scheme} workers={workers}: aggregation must \
                     collapse requests at least 5x, got {collapse:.1}x"
                );
            }
            lines.push(format!(
                "    {{\"path\": \"{which}\", \"scheme\": \"{scheme}\", \
                 \"workers\": {workers}, \"requests_off\": {off}, \
                 \"requests_on\": {on}, \"collapse\": {collapse:.2}}}"
            ));
        }
    }

    // --- JSON artifact ---------------------------------------------------
    let sim_json: Vec<String> = sim
        .iter()
        .map(|c| {
            format!(
                "    {{\"scheme\": \"{}\", \"workers\": {}, \"list_io\": {}, \
                 \"server_requests\": {}, \"list_regions\": {}, \
                 \"read_p95_us\": {:.1}, \"makespan_s\": {:.3}}}",
                c.scheme,
                c.workers,
                c.list_io,
                c.server_reads,
                c.list_regions,
                c.read_p95_us,
                c.makespan_s
            )
        })
        .collect();
    let real_json: Vec<String> = real
        .iter()
        .map(|c| {
            format!(
                "    {{\"scheme\": \"{}\", \"workers\": {}, \"list_io\": {}, \
                 \"pool_jobs\": {}, \"read_p95_us\": {:.1}}}",
                c.scheme, c.workers, c.list_io, c.requests, c.read_p95_us
            )
        })
        .collect();
    let payload = format!(
        "{{\n  \"experiment\": \"listio\",\n  \"sim_db_bytes\": {sim_bytes},\n  \
         \"sim_chunk_bytes\": {sim_chunk},\n  \"identical_bytes\": true,\n  \
         \"sim_sweep\": [\n{}\n  ],\n  \"real_sweep\": [\n{}\n  ],\n  \
         \"collapse\": [\n{}\n  ]\n}}\n",
        sim_json.join(",\n"),
        real_json.join(",\n"),
        lines.join(",\n"),
    );
    std::fs::write(&out, &payload).expect("write BENCH_listio.json");
    println!(
        "\nwrote {out}\nexpected shape: one aggregated request per server replaces \
         one request per chunk — ≥5x fewer server requests at 4+ workers, \
         byte-identical reads"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// (scheme, workers, requests off, requests on) pairs from the sim sweep.
fn sim_collapse(cells: &[SimCell]) -> Vec<(&'static str, u32, u64, u64)> {
    pair_up(
        cells
            .iter()
            .map(|c| (c.scheme, c.workers, c.list_io, c.server_reads)),
    )
}

/// Same pairs from the real sweep.
fn real_collapse(cells: &[RealCell]) -> Vec<(&'static str, u32, u64, u64)> {
    pair_up(
        cells
            .iter()
            .map(|c| (c.scheme, c.workers as u32, c.list_io, c.requests)),
    )
}

fn pair_up(
    it: impl Iterator<Item = (&'static str, u32, bool, u64)>,
) -> Vec<(&'static str, u32, u64, u64)> {
    let all: Vec<_> = it.collect();
    let mut out = Vec::new();
    for &(scheme, workers, list_io, off) in &all {
        if list_io {
            continue;
        }
        let on = all
            .iter()
            .find(|&&(s, w, l, _)| s == scheme && w == workers && l)
            .expect("on arm")
            .3;
        out.push((scheme, workers, off, on));
    }
    out
}
