//! Figure 4: application-level I/O trace of the real parallel BLAST
//! (8 workers, 8 fragments, 568-nt query). Prints the §4.2 statistics and
//! writes the scatter data to `fig4_trace.tsv`.

use parblast_bench::{arg_u64, print_table};
use parblast_core::experiments::fig4;

fn main() {
    // Default scale: 64 M residues (1/42 of nt); override with --residues.
    let residues = arg_u64("--residues", 64 << 20);
    let dir = std::env::temp_dir().join(format!("parblast_fig4_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("workdir");
    let r = fig4(&dir, residues).expect("fig4 run");
    let s = &r.summary;
    println!("Figure 4: I/O access pattern of the parallel BLAST (real run)");
    println!("database: {residues} residues, 8 fragments, 8 workers, blastn, 568-nt query\n");
    print_table(
        &["metric", "paper (2.7 GB nt)", "this run (scaled)"],
        &[
            vec!["total I/O ops".into(), "144".into(), format!("{}", s.ops)],
            vec![
                "reads".into(),
                "89%".into(),
                format!("{:.0}%", s.read_fraction * 100.0),
            ],
            vec![
                "read size min".into(),
                "13 B".into(),
                format!("{} B", s.read_min),
            ],
            vec![
                "read size max".into(),
                "220 MB".into(),
                format!("{:.1} MB", s.read_max as f64 / 1e6),
            ],
            vec![
                "read size mean".into(),
                "~10 MB".into(),
                format!("{:.2} MB", s.read_mean / 1e6),
            ],
            vec![
                "write size min".into(),
                "50 B".into(),
                format!("{} B", s.write_min),
            ],
            vec![
                "write size max".into(),
                "778 B".into(),
                format!("{} B", s.write_max),
            ],
            vec![
                "write size mean".into(),
                "690 B".into(),
                format!("{:.0} B", s.write_mean),
            ],
            vec![
                "query found (hits)".into(),
                "-".into(),
                format!("{}", r.hits),
            ],
        ],
    );
    let out = std::path::Path::new("fig4_trace.tsv");
    std::fs::write(out, &r.scatter_tsv).expect("write tsv");
    println!("\nscatter data -> {}", out.display());
    std::fs::remove_dir_all(&dir).ok();
}
