//! Ablation studies for the design choices DESIGN.md §5 calls out:
//!
//! 1. CEFT dual-half reads vs naive primary-only reads (the optimization
//!    of [6] that Figure 7 relies on);
//! 2. hot-spot skip-threshold sensitivity (Figure 9's detector);
//! 3. elevator write-batch size vs stress degradation (the Figure 8/9
//!    mechanism knob);
//! 4. application read-chunk size (the Figure 4 access-granularity choice).
//!
//! ```sh
//! cargo run --release -p parblast-bench --bin ablations [--db-bytes N]
//! ```

use parblast_bench::{arg_u64, print_table};
use parblast_core::ceft::{CeftConfig, ReadMode, SkipPolicy, WriteProtocol};
use parblast_core::hwsim::MIB;
use parblast_core::mpiblast::{run_simblast, SimBlastConfig, SimScheme};

fn base(db: u64) -> SimBlastConfig {
    SimBlastConfig {
        nodes: 9,
        workers: 8,
        fragments: 8,
        db_bytes: db,
        master_node: 8,
        scheme: SimScheme::Ceft {
            primary: (0..4).collect(),
            mirror: (4..8).collect(),
        },
        ..Default::default()
    }
}

fn main() {
    let db = arg_u64("--db-bytes", 2_700_000_000);

    // ── 1. Dual-half vs primary-only reads ──────────────────────────────
    println!("Ablation 1: CEFT read scheduling (8 workers, 4+4 servers)\n");
    let mut rows = Vec::new();
    for (label, mode) in [
        ("dual-half (paper)", ReadMode::DualHalf),
        ("primary-only (naive)", ReadMode::PrimaryOnly),
    ] {
        let mut cfg = base(db);
        cfg.ceft = CeftConfig {
            read_mode: mode,
            ..CeftConfig::default()
        };
        let out = run_simblast(&cfg);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", out.makespan_s),
            format!("{:.1}%", out.io_fraction * 100.0),
        ]);
    }
    print_table(&["read mode", "time (s)", "io fraction"], &rows);
    println!("\ndual-half engages all 8 disks per read; primary-only only 4 —");
    println!("the doubled parallelism of [6] that lets CEFT match PVFS in Fig. 7.\n");

    // ── 2. Skip-threshold sensitivity ───────────────────────────────────
    println!("Ablation 2: hot-spot skip threshold (one stressed disk)\n");
    let mut rows = Vec::new();
    for hot in [0.5f64, 0.7, 0.85, 0.95, 1.01] {
        let mut cfg = base(db);
        cfg.stress_nodes = vec![1];
        cfg.ceft = CeftConfig {
            policy: SkipPolicy {
                hot_threshold: hot,
                ..SkipPolicy::default()
            },
            ..CeftConfig::default()
        };
        let out = run_simblast(&cfg);
        rows.push(vec![
            if hot > 1.0 {
                "off (never skips)".into()
            } else {
                format!("{hot:.2}")
            },
            format!("{:.1}", out.makespan_s),
            out.skipped_parts.to_string(),
        ]);
    }
    print_table(
        &["hot threshold", "stressed time (s)", "skipped parts"],
        &rows,
    );
    println!("\nany threshold below the stressor's ~100% utilization detects it;");
    println!("disabling the skip leaves CEFT convoying like PVFS (Fig. 9).\n");

    // ── 3. Elevator write-batch size vs degradation ─────────────────────
    println!("Ablation 3: elevator write-batch size vs PVFS stress collapse\n");
    let mut rows = Vec::new();
    for batch_mb in [2u64, 8, 16, 32] {
        let mk = |stress: bool| {
            let mut cfg = base(db);
            cfg.scheme = SimScheme::Pvfs {
                servers: (0..8).collect(),
            };
            cfg.hw.disk.write_batch_bytes = batch_mb * MIB;
            if stress {
                cfg.stress_nodes = vec![1];
            }
            run_simblast(&cfg).makespan_s
        };
        let clean = mk(false);
        let hot = mk(true);
        rows.push(vec![
            format!("{batch_mb} MB"),
            format!("{clean:.1}"),
            format!("{hot:.1}"),
            format!("{:.1}x", hot / clean),
        ]);
    }
    print_table(
        &["write batch", "clean (s)", "stressed (s)", "factor"],
        &rows,
    );
    println!("\nthe collapse factor tracks how long the appending writer may");
    println!("monopolize the head — the 2003 elevator behavior behind Fig. 9.\n");

    // ── 4. Application read-chunk size ──────────────────────────────────
    println!("Ablation 4: application read-chunk size (PVFS, 8x8)\n");
    let mut rows = Vec::new();
    for chunk_mb in [1u64, 4, 8, 16, 32] {
        let mut cfg = base(db);
        cfg.scheme = SimScheme::Pvfs {
            servers: (0..8).collect(),
        };
        cfg.chunk = chunk_mb * MIB;
        let out = run_simblast(&cfg);
        rows.push(vec![
            format!("{chunk_mb} MB"),
            format!("{:.1}", out.makespan_s),
            format!("{:.1}%", out.io_fraction * 100.0),
        ]);
    }
    print_table(&["chunk", "time (s)", "io fraction"], &rows);
    println!("\nlarger requests amortize per-server overheads (the paper's mean");
    println!("read is ~10 MB, Fig. 4) until store-and-forward latency dominates.\n");

    // ── 5. Duplex write protocols ───────────────────────────────────────
    // The BLAST workload barely writes, so measure with a write-heavy
    // variant: every fragment ends with many large result writes.
    println!("Ablation 5: CEFT duplex write protocols (write-heavy variant)\n");
    let mut rows = Vec::new();
    for (label, protocol) in [
        ("client duplex", WriteProtocol::ClientDuplex),
        ("server sync", WriteProtocol::ServerSync),
        ("server async", WriteProtocol::ServerAsync),
    ] {
        let mut cfg = base(db / 16); // smaller db: writes dominate
        cfg.result_writes = 64;
        cfg.result_write_bytes = 4 * MIB;
        cfg.ceft = CeftConfig {
            write_protocol: protocol,
            ..CeftConfig::default()
        };
        let out = run_simblast(&cfg);
        rows.push(vec![label.to_string(), format!("{:.1}", out.makespan_s)]);
    }
    print_table(&["write protocol", "time (s)"], &rows);
    println!("\nserver-side forwarding halves client NIC traffic; asynchronous");
    println!("mirroring acks earliest (the trade-off studied in ref. [7]).");
}
