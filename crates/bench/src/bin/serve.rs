//! Serving-layer sweep: batch cap × offered load × scheme, with Poisson
//! arrivals on the calibrated simulator. Prints the table and writes the
//! machine-readable `BENCH_serve.json` that CI archives.

use parblast_bench::{arg_u64, arg_value, print_table};
use parblast_core::experiments::{serve_sweep, ServeRow, NT_BYTES, SERVE_SEARCH_RATE};

const LOADS: [f64; 2] = [0.7, 1.45];
const BATCH_CAPS: [usize; 4] = [1, 2, 4, 8];

fn json(rows: &[ServeRow], db: u64, queries: u64, capacity: u64) -> String {
    let pct = |p: &parblast_core::simcore::Percentiles| {
        format!(
            "{{\"p50\":{:.4},\"p95\":{:.4},\"p99\":{:.4}}}",
            p.p50, p.p95, p.p99
        )
    };
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"scheme\":\"{}\",\"load\":{},\"max_batch\":{},\"arrival_qps\":{:.5},\
                 \"service_s\":{:.4},\"served\":{},\"rejected\":{},\"expired\":{},\
                 \"batches\":{},\"mean_batch\":{:.3},\"bytes_read\":{},\
                 \"bytes_unbatched\":{},\"io_savings\":{:.3},\"throughput_qps\":{:.5},\
                 \"duration_s\":{:.2},\"mean_wait_s\":{:.3},\"mean_latency_s\":{:.3},\
                 \"scan_s_mean\":{:.3},\"search_s_mean\":{:.3},\
                 \"wait_s\":{},\"latency_s\":{}}}",
                r.scheme,
                r.load,
                r.max_batch,
                r.arrival_qps,
                r.service_s,
                r.report.served,
                r.report.rejected,
                r.report.expired,
                r.report.batches,
                r.report.mean_batch,
                r.report.bytes_read,
                r.report.bytes_unbatched,
                r.report.io_savings(),
                r.report.throughput_qps,
                r.report.duration_s,
                r.report.mean_wait_s,
                r.report.mean_latency_s,
                r.report.scan_s_mean,
                r.report.search_s_mean,
                pct(&r.report.wait),
                pct(&r.report.latency),
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"serve\",\n  \"db_bytes\": {db},\n  \
         \"search_rate\": {SERVE_SEARCH_RATE},\n  \"queries\": {queries},\n  \
         \"capacity\": {capacity},\n  \"rows\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    )
}

fn main() {
    let db = arg_u64("--db-bytes", NT_BYTES);
    let queries = arg_u64("--queries", 200) as usize;
    let capacity = arg_u64("--capacity", 4096) as usize;
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let rows = serve_sweep(db, &LOADS, &BATCH_CAPS, queries, capacity);
    println!("Serving sweep: scan-sharing batch cap x offered load x scheme");
    println!(
        "database: {:.2} GB, {} Poisson arrivals per cell, queue capacity {}\n",
        db as f64 / 1e9,
        queries,
        capacity
    );
    print_table(
        &[
            "scheme",
            "load",
            "B",
            "qps",
            "served",
            "batches",
            "mean B",
            "IO saved",
            "p50 (s)",
            "p95 (s)",
            "p99 (s)",
            "thr (q/s)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.scheme.to_string(),
                    format!("{:.2}", r.load),
                    r.max_batch.to_string(),
                    format!("{:.3}", r.arrival_qps),
                    r.report.served.to_string(),
                    r.report.batches.to_string(),
                    format!("{:.2}", r.report.mean_batch),
                    format!("{:.2}x", r.report.io_savings()),
                    format!("{:.1}", r.report.latency.p50),
                    format!("{:.1}", r.report.latency.p95),
                    format!("{:.1}", r.report.latency.p99),
                    format!("{:.3}", r.report.throughput_qps),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let payload = json(&rows, db, queries as u64, capacity as u64);
    std::fs::write(&out, &payload).expect("write BENCH_serve.json");
    println!(
        "\nwrote {out}\nexpected shape: at load 1.45 unbatched serving saturates; \
         batch caps >= 4 cut database reads >= 2x and improve p95 under every scheme"
    );
}
