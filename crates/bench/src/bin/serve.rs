//! Serving-layer benchmark, two tiers:
//!
//! * **real engine** — a scan-bound query stream served through
//!   [`ParallelBlast::run_batch_with_kernel`] at batch caps {1, 2, 4, 8},
//!   fused kernel vs the per-query kernel, interleaved, with hit-for-hit
//!   identity asserted in every cell. This is the measured
//!   served-queries/s curve the fused sim model is calibrated against.
//! * **simulated sweep** — batch cap × offered load × scheme, with
//!   Poisson arrivals on the calibrated simulator.
//!
//! Prints both tables and writes the machine-readable `BENCH_serve.json`
//! that CI archives.

use std::time::Instant;

use parblast_bench::{arg_u64, arg_value, print_table};
use parblast_core::blast::{DbStats, Program, SearchParams};
use parblast_core::experiments::{serve_sweep, ServeRow, NT_BYTES, SERVE_SEARCH_RATE};
use parblast_core::mpiblast::{BatchKernel, ParallelBlast, Parallelization, Scheme, Tracer};
use parblast_core::seqdb::blastdb::SeqType;
use parblast_core::seqdb::{extract_query, segment_into_fragments, SyntheticConfig, SyntheticNt};

const LOADS: [f64; 2] = [0.7, 1.45];
const BATCH_CAPS: [usize; 4] = [1, 2, 4, 8];

/// One real-engine cell: a batch cap served by both kernels.
struct RealCell {
    max_batch: usize,
    per_query_s: f64,
    fused_s: f64,
    per_query_qps: f64,
    fused_qps: f64,
    kernel_passes: u64,
    passes_saved: u64,
}

/// Serve a scan-bound query stream through the real thread-pool runner
/// with both kernels at every batch cap; assert identity per cell.
fn real_engine_bench(residues: u64, nqueries: usize, reps: usize) -> Vec<RealCell> {
    let base = std::env::temp_dir().join(format!("serve_bench_{}", std::process::id()));
    std::fs::create_dir_all(&base).expect("bench tmpdir");
    let mut g = SyntheticNt::new(SyntheticConfig {
        total_residues: residues,
        seed: 11,
        ..Default::default()
    });
    let mut seqs = vec![];
    while let Some(x) = g.next() {
        seqs.push(x);
    }
    let db = DbStats {
        residues: g.residues(),
        nseq: g.sequences(),
    };
    // Scan-bound mix: queries from an independent stream, so nearly every
    // subject is a seed-scan miss and the fused pass amortizes the
    // dominant cost.
    let mut qgen = SyntheticNt::new(SyntheticConfig {
        total_residues: 64_000,
        min_len: 600,
        seed: 4242,
        ..Default::default()
    });
    let queries: Vec<Vec<u8>> = (0..nqueries)
        .map(|i| {
            let src = qgen.next().expect("query stream").1;
            extract_query(&src, 568.min(src.len()), 0.03, 300 + i as u64)
        })
        .collect();
    let scheme = Scheme::local_at(&base.join("io"), 4).expect("local scheme");
    let infos = segment_into_fragments(&base.join("fmt"), "nt", SeqType::Nucleotide, 8, seqs)
        .expect("segment");
    let mut fragments = vec![];
    for info in infos {
        let bytes = std::fs::read(&info.path).expect("fragment bytes");
        let name = info
            .path
            .file_name()
            .expect("fragment name")
            .to_string_lossy()
            .into_owned();
        scheme.load_fragment(&name, &bytes).expect("load fragment");
        fragments.push(name);
    }
    let job = ParallelBlast {
        program: Program::Blastn,
        params: SearchParams::blastn(),
        db,
        fragments,
        workers: 4,
        scheme,
        tracer: Tracer::new(),
        parallelization: Parallelization::DatabaseSegmentation,
        prefetch: true,
        list_io: false,
    };
    let serve = |cap: usize, kernel: BatchKernel| -> (Vec<String>, f64, u64, u64) {
        let t0 = Instant::now();
        let (mut outs, mut kp, mut ps) = (Vec::new(), 0u64, 0u64);
        for chunk in queries.chunks(cap) {
            let out = job.run_batch_with_kernel(chunk, kernel).expect("batch");
            kp += out.kernel_passes;
            ps += out.passes_saved;
            for hits in &out.per_query {
                outs.push(format!("{hits:?}"));
            }
        }
        (outs, t0.elapsed().as_secs_f64(), kp, ps)
    };
    let mut cells = Vec::new();
    for &cap in &BATCH_CAPS {
        // Warmup pair doubles as the identity check for this cell.
        let (fused_out, _, kernel_passes, passes_saved) = serve(cap, BatchKernel::Fused);
        let (pq_out, _, _, _) = serve(cap, BatchKernel::PerQuery);
        assert_eq!(
            fused_out, pq_out,
            "cap {cap}: fused and per-query kernels must agree hit-for-hit"
        );
        let mut fused_times = Vec::with_capacity(reps);
        let mut pq_times = Vec::with_capacity(reps);
        for _ in 0..reps {
            let (f, t, _, _) = serve(cap, BatchKernel::Fused);
            assert_eq!(f, fused_out, "cap {cap}: unstable fused serving");
            fused_times.push(t);
            let (p, t, _, _) = serve(cap, BatchKernel::PerQuery);
            assert_eq!(p, pq_out, "cap {cap}: unstable per-query serving");
            pq_times.push(t);
        }
        fused_times.sort_by(f64::total_cmp);
        pq_times.sort_by(f64::total_cmp);
        let fused_s = fused_times[reps / 2];
        let per_query_s = pq_times[reps / 2];
        cells.push(RealCell {
            max_batch: cap,
            per_query_s,
            fused_s,
            per_query_qps: nqueries as f64 / per_query_s,
            fused_qps: nqueries as f64 / fused_s,
            kernel_passes,
            passes_saved,
        });
    }
    std::fs::remove_dir_all(&base).ok();
    cells
}

fn real_json(cells: &[RealCell]) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"max_batch\": {}, \"per_query_s\": {:.4}, \"fused_s\": {:.4}, \
                 \"per_query_qps\": {:.3}, \"fused_qps\": {:.3}, \"speedup\": {:.3}, \
                 \"kernel_passes\": {}, \"passes_saved\": {}, \"identical_hits\": true}}",
                c.max_batch,
                c.per_query_s,
                c.fused_s,
                c.per_query_qps,
                c.fused_qps,
                c.fused_qps / c.per_query_qps,
                c.kernel_passes,
                c.passes_saved,
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

fn json(rows: &[ServeRow], db: u64, queries: u64, capacity: u64) -> String {
    let pct = |p: &parblast_core::simcore::Percentiles| {
        format!(
            "{{\"p50\":{:.4},\"p95\":{:.4},\"p99\":{:.4}}}",
            p.p50, p.p95, p.p99
        )
    };
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"scheme\":\"{}\",\"load\":{},\"max_batch\":{},\"arrival_qps\":{:.5},\
                 \"service_s\":{:.4},\"served\":{},\"rejected\":{},\"expired\":{},\
                 \"batches\":{},\"mean_batch\":{:.3},\"bytes_read\":{},\
                 \"bytes_unbatched\":{},\"io_savings\":{:.3},\"throughput_qps\":{:.5},\
                 \"duration_s\":{:.2},\"mean_wait_s\":{:.3},\"mean_latency_s\":{:.3},\
                 \"scan_s_mean\":{:.3},\"search_s_mean\":{:.3},\
                 \"wait_s\":{},\"latency_s\":{}}}",
                r.scheme,
                r.load,
                r.max_batch,
                r.arrival_qps,
                r.service_s,
                r.report.served,
                r.report.rejected,
                r.report.expired,
                r.report.batches,
                r.report.mean_batch,
                r.report.bytes_read,
                r.report.bytes_unbatched,
                r.report.io_savings(),
                r.report.throughput_qps,
                r.report.duration_s,
                r.report.mean_wait_s,
                r.report.mean_latency_s,
                r.report.scan_s_mean,
                r.report.search_s_mean,
                pct(&r.report.wait),
                pct(&r.report.latency),
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"serve\",\n  \"db_bytes\": {db},\n  \
         \"search_rate\": {SERVE_SEARCH_RATE},\n  \"queries\": {queries},\n  \
         \"capacity\": {capacity},\n  \"rows\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    )
}

fn main() {
    let db = arg_u64("--db-bytes", NT_BYTES);
    let queries = arg_u64("--queries", 200) as usize;
    let capacity = arg_u64("--capacity", 4096) as usize;
    let residues = arg_u64("--residues", 2_000_000);
    let real_queries = arg_u64("--real-queries", 32) as usize;
    let reps = arg_u64("--reps", 3) as usize;
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());

    let cells = real_engine_bench(residues, real_queries, reps);
    println!(
        "Real engine: {real_queries} scan-bound queries, fused vs per-query kernel, \
         median of {reps} reps\n"
    );
    print_table(
        &[
            "B",
            "per-query (s)",
            "fused (s)",
            "pq q/s",
            "fused q/s",
            "speedup",
            "passes",
            "saved",
        ],
        &cells
            .iter()
            .map(|c| {
                vec![
                    c.max_batch.to_string(),
                    format!("{:.3}", c.per_query_s),
                    format!("{:.3}", c.fused_s),
                    format!("{:.2}", c.per_query_qps),
                    format!("{:.2}", c.fused_qps),
                    format!("{:.2}x", c.fused_qps / c.per_query_qps),
                    c.kernel_passes.to_string(),
                    c.passes_saved.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    // The headline acceptance number: at batch cap 4 on a scan-bound mix
    // the fused kernel must at least double served-queries/s.
    let c4 = cells.iter().find(|c| c.max_batch == 4).expect("cap-4 cell");
    assert!(
        c4.fused_qps >= 2.0 * c4.per_query_qps,
        "fused kernel must serve >= 2x queries/s at cap 4: fused {:.2} vs per-query {:.2}",
        c4.fused_qps,
        c4.per_query_qps
    );
    println!();

    let rows = serve_sweep(db, &LOADS, &BATCH_CAPS, queries, capacity);
    println!("Serving sweep: scan-sharing batch cap x offered load x scheme");
    println!(
        "database: {:.2} GB, {} Poisson arrivals per cell, queue capacity {}\n",
        db as f64 / 1e9,
        queries,
        capacity
    );
    print_table(
        &[
            "scheme",
            "load",
            "B",
            "qps",
            "served",
            "batches",
            "mean B",
            "IO saved",
            "p50 (s)",
            "p95 (s)",
            "p99 (s)",
            "thr (q/s)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.scheme.to_string(),
                    format!("{:.2}", r.load),
                    r.max_batch.to_string(),
                    format!("{:.3}", r.arrival_qps),
                    r.report.served.to_string(),
                    r.report.batches.to_string(),
                    format!("{:.2}", r.report.mean_batch),
                    format!("{:.2}x", r.report.io_savings()),
                    format!("{:.1}", r.report.latency.p50),
                    format!("{:.1}", r.report.latency.p95),
                    format!("{:.1}", r.report.latency.p99),
                    format!("{:.3}", r.report.throughput_qps),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let mut payload = json(&rows, db, queries as u64, capacity as u64);
    let marker = "\n  \"rows\": [";
    let at = payload.find(marker).expect("rows marker");
    payload.insert_str(at, &format!("\n  \"real_engine\": {},", real_json(&cells)));
    std::fs::write(&out, &payload).expect("write BENCH_serve.json");
    println!(
        "\nwrote {out}\nexpected shape: the fused kernel serves >= 2x queries/s at batch \
         cap 4 on the real engine; in the sweep, unbatched serving saturates at load 1.45 \
         while batch caps >= 4 cut database reads >= 2x and improve p95 under every scheme"
    );
}
