//! Chaos bench: goodput, tail latency, and shed mix of the serving tier
//! under seeded socket-fault injection, with the retry budget on or off.
//!
//! Four cells, each a fresh daemon hammered by closed-loop clients whose
//! connections carry [`ChaosDialer`] fault schedules:
//!
//! | cell              | connection fault rate | retry budget |
//! |-------------------|-----------------------|--------------|
//! | `fault0-on`       | 0%                    | on           |
//! | `fault5-on`       | 5%                    | on           |
//! | `fault5-off`      | 5%                    | unlimited    |
//! | `fault20-on`      | 20%                   | on           |
//!
//! The contract this bench pins (and CI re-checks from the JSON): with
//! the budget on, polite-client goodput at a 5% connection-fault rate
//! stays within 10% of the fault-free baseline, and every cell's drained
//! counters satisfy both accounting identities. Writes `BENCH_chaos.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parblast_bench::{arg_u64, arg_value, print_table};
use parblast_core::hwsim::SocketChaosProfile;
use parblast_core::net::{
    connection_seed, BudgetConfig, ChaosDialer, ClientConfig, EchoRunner, NetClient, NetServer,
    ServerConfig, StatsSnapshot,
};
use parblast_core::pvfs::RetryPolicy;
use parblast_core::simcore::{LogHistogram, Percentiles, SimTime};

struct Config {
    shards: usize,
    max_batch: usize,
    clients: usize,
    queries_per_client: usize,
    batch_delay: Duration,
    seed: u64,
}

struct Cell {
    name: &'static str,
    fault_rate: f64,
    budget_on: bool,
}

struct CellResult {
    name: &'static str,
    fault_rate: f64,
    budget_on: bool,
    ok: u64,
    failed: u64,
    retries: u64,
    budget_exhausted: u64,
    dials: u64,
    goodput_qps: f64,
    pct: Percentiles,
    stats: StatsSnapshot,
}

fn run_cell(cfg: &Config, cell: &Cell, cell_ix: usize) -> CellResult {
    let server_cfg = ServerConfig {
        shards: cfg.shards,
        max_batch: cfg.max_batch,
        quota: None,
        ..Default::default()
    };
    let runner = Arc::new(EchoRunner::with_delay(cfg.batch_delay));
    let handle = NetServer::start("127.0.0.1:0", server_cfg, runner).expect("start daemon");
    let addr = handle.addr().to_string();

    // Per-window-of-traffic fault rate: each 512-byte window of a
    // connection's life draws a reset with `fault_rate`, so long-lived
    // pooled connections stay under pressure for the whole run instead
    // of only gambling once at dial time.
    let profile = SocketChaosProfile::resets(cell.fault_rate, 512).with_repeats(64);
    let budget = if cell.budget_on {
        BudgetConfig::default()
    } else {
        BudgetConfig::unlimited()
    };
    let t0 = Instant::now();
    let mut workers = Vec::new();
    for c in 0..cfg.clients {
        let addr = addr.clone();
        let n = cfg.queries_per_client;
        // Every (cell, client) pair gets its own deterministic chaos seed.
        let seed = connection_seed(cfg.seed, (cell_ix * 64 + c) as u64);
        workers.push(std::thread::spawn(move || {
            let config = ClientConfig {
                retry: RetryPolicy {
                    timeout: SimTime::from_millis(300),
                    base_backoff: SimTime::from_millis(1),
                    max_backoff: SimTime::from_millis(5),
                    max_retries: 4,
                },
                budget,
                ..Default::default()
            };
            let dialer = Arc::new(ChaosDialer::new(seed, profile));
            let mut ok = 0u64;
            let mut failed = 0u64;
            let mut lat = Vec::with_capacity(n);
            let (retries, exhausted, dials);
            match NetClient::connect_with_dialer(&addr, config, dialer.clone()) {
                Ok(mut client) => {
                    for i in 0..n {
                        let q = format!("c{c}q{i}").into_bytes();
                        let q0 = Instant::now();
                        match client.query(&q) {
                            Ok(bytes) => {
                                assert_eq!(
                                    bytes,
                                    EchoRunner::expected(&q),
                                    "client {c} query {i}: payload diverged under chaos"
                                );
                                ok += 1;
                                lat.push(q0.elapsed().as_micros() as u64);
                            }
                            Err(_) => failed += 1,
                        }
                    }
                    let cnt = client.counters();
                    retries = cnt.retries;
                    exhausted = cnt.budget_exhausted;
                    dials = cnt.dials;
                }
                Err(_) => {
                    failed += n as u64;
                    retries = 0;
                    exhausted = 0;
                    dials = dialer.dials();
                }
            }
            (ok, failed, retries, exhausted, dials, lat)
        }));
    }

    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut retries = 0u64;
    let mut budget_exhausted = 0u64;
    let mut dials = 0u64;
    let mut hist = LogHistogram::new();
    for w in workers {
        let (o, f, r, b, d, lat) = w.join().unwrap();
        ok += o;
        failed += f;
        retries += r;
        budget_exhausted += b;
        dials += d;
        for us in lat {
            hist.record(us);
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let mut admin = NetClient::connect(&addr).expect("admin connect");
    admin.drain().expect("drain");
    let stats = handle.join();

    // Both accounting identities must survive every injected fault.
    assert_eq!(
        stats.submits,
        stats.accepted + stats.shed_queue_full + stats.shed_quota + stats.shed_draining,
        "{}: submit ledger must balance: {stats:?}",
        cell.name
    );
    assert_eq!(
        stats.accepted,
        stats.served + stats.expired + stats.cancelled,
        "{}: every accepted query answered exactly once: {stats:?}",
        cell.name
    );

    CellResult {
        name: cell.name,
        fault_rate: cell.fault_rate,
        budget_on: cell.budget_on,
        ok,
        failed,
        retries,
        budget_exhausted,
        dials,
        goodput_qps: ok as f64 / wall_s.max(1e-9),
        pct: hist.percentiles(),
        stats,
    }
}

fn json(cfg: &Config, cells: &[CellResult], ratio_5pct: f64) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|r| {
            format!(
                "    {{\"cell\":\"{}\",\"fault_rate\":{:.2},\"budget\":\"{}\",\
                 \"ok\":{},\"failed\":{},\"retries\":{},\"budget_exhausted\":{},\
                 \"dials\":{},\"goodput_qps\":{:.1},\
                 \"latency_us\":{{\"p50\":{:.0},\"p95\":{:.0},\"p99\":{:.0}}},\
                 \"submits\":{},\"accepted\":{},\"served\":{},\
                 \"shed_queue_full\":{},\"shed_quota\":{},\"shed_draining\":{},\
                 \"expired\":{},\"cancelled\":{},\"evicted\":{}}}",
                r.name,
                r.fault_rate,
                if r.budget_on { "on" } else { "unlimited" },
                r.ok,
                r.failed,
                r.retries,
                r.budget_exhausted,
                r.dials,
                r.goodput_qps,
                r.pct.p50,
                r.pct.p95,
                r.pct.p99,
                r.stats.submits,
                r.stats.accepted,
                r.stats.served,
                r.stats.shed_queue_full,
                r.stats.shed_quota,
                r.stats.shed_draining,
                r.stats.expired,
                r.stats.cancelled,
                r.stats.evicted,
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"chaos\",\n  \"shards\": {},\n  \"clients\": {},\n  \
         \"queries_per_client\": {},\n  \"batch_delay_us\": {},\n  \"seed\": {},\n  \
         \"goodput_ratio_at_5pct\": {:.4},\n  \"within_10pct_of_fault_free\": {},\n  \
         \"accounting_identities_hold\": true,\n  \"cells\": [\n{}\n  ]\n}}\n",
        cfg.shards,
        cfg.clients,
        cfg.queries_per_client,
        cfg.batch_delay.as_micros(),
        cfg.seed,
        ratio_5pct,
        ratio_5pct >= 0.9,
        rows.join(",\n")
    )
}

fn main() {
    let cfg = Config {
        shards: arg_u64("--shards", 2) as usize,
        max_batch: arg_u64("--max-batch", 4) as usize,
        clients: arg_u64("--clients", 4) as usize,
        queries_per_client: arg_u64("--queries", 150) as usize,
        batch_delay: Duration::from_micros(arg_u64("--batch-delay-us", 2000)),
        seed: arg_u64("--seed", 42),
    };
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_chaos.json".to_string());

    let cells = [
        Cell {
            name: "fault0-on",
            fault_rate: 0.0,
            budget_on: true,
        },
        Cell {
            name: "fault5-on",
            fault_rate: 0.05,
            budget_on: true,
        },
        Cell {
            name: "fault5-off",
            fault_rate: 0.05,
            budget_on: false,
        },
        Cell {
            name: "fault20-on",
            fault_rate: 0.20,
            budget_on: true,
        },
    ];
    println!(
        "chaos bench: {} clients x {} queries per cell, {} shards, batch delay {} us, seed {}\n",
        cfg.clients,
        cfg.queries_per_client,
        cfg.shards,
        cfg.batch_delay.as_micros(),
        cfg.seed
    );

    let results: Vec<CellResult> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| run_cell(&cfg, c, i))
        .collect();

    print_table(
        &[
            "cell",
            "fault",
            "budget",
            "ok",
            "failed",
            "retries",
            "dials",
            "goodput qps",
            "p95 us",
        ],
        &results
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    format!("{:.0}%", r.fault_rate * 100.0),
                    if r.budget_on { "on" } else { "unlim" }.to_string(),
                    r.ok.to_string(),
                    r.failed.to_string(),
                    r.retries.to_string(),
                    r.dials.to_string(),
                    format!("{:.0}", r.goodput_qps),
                    format!("{:.0}", r.pct.p95),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // The headline claim: with the retry budget on, goodput at a 5%
    // connection-fault rate stays within 10% of the fault-free baseline.
    let baseline = results[0].goodput_qps;
    let faulted = results[1].goodput_qps;
    let ratio = faulted / baseline.max(1e-9);
    println!(
        "\ngoodput at 5% faults (budget on): {faulted:.0} qps vs fault-free {baseline:.0} qps \
         (ratio {ratio:.3})"
    );
    assert!(
        ratio >= 0.9,
        "retry budget failed to hold goodput within 10% of fault-free: ratio {ratio:.3}"
    );
    // Sanity: the stress cell must actually have exercised the fault
    // machinery (resets force re-dials beyond the initial pool).
    assert!(
        results[3].dials > cfg.clients as u64,
        "20% fault cell injected no resets: dials {}",
        results[3].dials
    );

    let payload = json(&cfg, &results, ratio);
    std::fs::write(&out, &payload).expect("write BENCH_chaos.json");
    println!("wrote {out}");
}
