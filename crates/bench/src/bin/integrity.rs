//! Rebuild-overhead ablation: a CEFT primary crashes mid-search and
//! revives later, forcing an online mirror resync; each row paces the
//! rebuild copy at a different rate cap and measures what that pacing
//! costs the foreground search (read p95 vs a clean run). A latent
//! corrupt stripe rides along to exercise read-repair. Emits a
//! machine-readable `BENCH_integrity.json` that CI archives.

use parblast_bench::{arg_u64, arg_value, print_table};
use parblast_core::experiments::{integrity, IntegrityRow, NT_BYTES};

fn json(rows: &[IntegrityRow], db: u64) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"rate_cap_mbs\":{:.1},\"t_clean_s\":{:.2},\"t_faulted_s\":{:.2},\
                 \"overhead_pct\":{:.2},\"clean_p95_us\":{:.1},\"faulted_p95_us\":{:.1},\
                 \"completed\":{},\"resyncs\":{},\"repaired_stripes\":{},\"failovers\":{}}}",
                r.rate_cap_mbs,
                r.t_clean,
                r.t_faulted,
                100.0 * (r.t_faulted - r.t_clean) / r.t_clean,
                r.clean_p95_us,
                r.faulted_p95_us,
                r.completed,
                r.resyncs,
                r.repaired_stripes,
                r.failovers,
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"integrity\",\n  \"db_bytes\": {db},\n  \
         \"scenario\": \"corrupt stripe at +1s, crash primary 1 at +2s, revive at +10s\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    )
}

fn main() {
    let db = arg_u64("--db-bytes", NT_BYTES);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_integrity.json".to_string());
    // 0 = unpaced; the rest bracket the ~26 MB/s per-disk read bandwidth
    // the rebuild and the foreground search compete for.
    let caps: Vec<f64> = match arg_value("--caps") {
        Some(s) => s
            .split(',')
            .map(|c| c.trim().parse().expect("--caps takes MB/s numbers"))
            .collect(),
        None => vec![0.0, 32.0, 8.0, 2.0],
    };
    let rows = integrity(db, &caps);
    println!("Integrity: corruption + crash + revive on CEFT 4+4 (8 workers)");
    println!("database: {:.2} GB\n", db as f64 / 1e9);
    print_table(
        &[
            "resync cap (MB/s)",
            "clean (s)",
            "faulted (s)",
            "overhead",
            "clean p95 (ms)",
            "faulted p95 (ms)",
            "resyncs",
            "repaired",
            "failovers",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    if r.rate_cap_mbs <= 0.0 {
                        "unpaced".to_string()
                    } else {
                        format!("{}", r.rate_cap_mbs)
                    },
                    format!("{:.1}", r.t_clean),
                    format!("{:.1}", r.t_faulted),
                    format!("{:+.1}%", 100.0 * (r.t_faulted - r.t_clean) / r.t_clean),
                    format!("{:.2}", r.clean_p95_us / 1e3),
                    format!("{:.2}", r.faulted_p95_us / 1e3),
                    r.resyncs.to_string(),
                    r.repaired_stripes.to_string(),
                    r.failovers.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nexpected shape: every cap completes with one resync and read-repair \
         of the corrupt stripe; tighter caps stretch the rebuild window while \
         freeing disk bandwidth for foreground reads"
    );
    let payload = json(&rows, db);
    std::fs::write(&out, &payload).expect("write BENCH_integrity.json");
    println!("wrote {out}");
}
