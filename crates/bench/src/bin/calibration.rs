//! §4.1 calibration check: simulated Bonnie (disk) and Netperf (network)
//! against the paper's measured numbers.

use parblast_bench::print_table;
use parblast_core::experiments::calibration;

fn main() {
    let c = calibration();
    println!("Calibration vs paper (§4.1, PrairieFire cluster)\n");
    print_table(
        &["metric", "paper", "simulated"],
        &[
            vec![
                "disk write (Bonnie), MB/s".into(),
                "32".into(),
                format!("{:.1}", c.disk_write_mbs),
            ],
            vec![
                "disk read (Bonnie), MB/s".into(),
                "26".into(),
                format!("{:.1}", c.disk_read_mbs),
            ],
            vec![
                "TCP over Myrinet (Netperf), MB/s".into(),
                "~112".into(),
                format!("{:.1}", c.net_mbs),
            ],
            vec![
                "TCP CPU utilization".into(),
                "47%".into(),
                format!("{:.0}%", c.net_cpu_fraction * 100.0),
            ],
        ],
    );
}
