//! Discrete-event engine throughput micro-bench: a ring of components
//! forwarding tokens through the central time-ordered queue. Sweeps the
//! component count and the number of tokens in flight (the heap depth),
//! reporting raw dispatch rate in events per second. Writes
//! `BENCH_engine_events.json` for CI.

use std::time::Instant;

use parblast_bench::{arg_u64, arg_value, print_table};
use parblast_core::simcore::{CompId, Component, Ctx, Engine, RunOutcome, SimTime};

/// One hop in the ring: forward every token to the next component after a
/// fixed simulated delay. All state lives in the engine's queue, so the
/// dispatch loop itself dominates the measurement.
struct Hop {
    next: CompId,
}

impl Component<u64> for Hop {
    fn on_event(&mut self, ctx: &mut Ctx<'_, u64>, token: u64) {
        ctx.schedule_in(SimTime::from_nanos(100), self.next, token);
    }

    fn name(&self) -> &str {
        "hop"
    }
}

struct Row {
    components: usize,
    tokens: usize,
    events: u64,
    wall_s: f64,
    events_per_s: f64,
}

fn run_ring(components: usize, tokens: usize, budget: u64, seed: u64) -> Row {
    let mut eng: Engine<u64> = Engine::new(seed);
    eng.event_budget = budget;
    let first = CompId(0);
    for i in 0..components {
        let next = CompId(((i + 1) % components) as u32);
        eng.add(Hop { next });
    }
    for t in 0..tokens {
        eng.schedule(SimTime::ZERO, first, t as u64);
    }
    let t0 = Instant::now();
    let outcome = eng.run();
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(outcome, RunOutcome::Budget, "ring must run to the budget");
    assert_eq!(eng.events_processed(), budget);
    assert_eq!(eng.events_dropped(), 0);
    Row {
        components,
        tokens,
        events: budget,
        wall_s,
        events_per_s: budget as f64 / wall_s.max(1e-9),
    }
}

fn json(rows: &[Row]) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"components\":{},\"tokens\":{},\"events\":{},\
                 \"wall_s\":{:.4},\"events_per_s\":{:.0}}}",
                r.components, r.tokens, r.events, r.wall_s, r.events_per_s
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"engine_events\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    )
}

fn main() {
    let budget = arg_u64("--events", 2_000_000);
    let seed = arg_u64("--seed", 42);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_engine_events.json".to_string());

    println!("simcore engine dispatch rate, {budget} events per cell\n");
    let mut rows = Vec::new();
    for &components in &[1usize, 16, 256] {
        for &tokens in &[1usize, 64, 1024] {
            rows.push(run_ring(components, tokens, budget, seed));
        }
    }
    print_table(
        &["components", "tokens", "events", "wall (s)", "events/s"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.components.to_string(),
                    r.tokens.to_string(),
                    r.events.to_string(),
                    format!("{:.3}", r.wall_s),
                    format!("{:.2e}", r.events_per_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    std::fs::write(&out, json(&rows)).expect("write BENCH_engine_events.json");
    println!(
        "\nwrote {out}\nexpected shape: dispatch rate is millions of events/s and \
         degrades only logarithmically with tokens in flight (heap depth)"
    );
}
