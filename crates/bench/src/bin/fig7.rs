//! Figure 7: over-PVFS (8 data servers) vs over-CEFT-PVFS (4 mirroring 4)
//! with the same total number of server nodes.

use parblast_bench::{arg_u64, print_table};
use parblast_core::experiments::{fig7, NT_BYTES};

fn main() {
    let db = arg_u64("--db-bytes", NT_BYTES);
    let rows = fig7(&[1, 2, 4, 8], db);
    println!("Figure 7: PVFS (8 servers) vs CEFT-PVFS (4 mirroring 4)");
    println!("database: {:.2} GB\n", db as f64 / 1e9);
    print_table(
        &[
            "workers",
            "over-PVFS (s)",
            "over-CEFT-PVFS (s)",
            "CEFT/PVFS",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workers.to_string(),
                    format!("{:.1}", r.t_pvfs),
                    format!("{:.1}", r.t_ceft),
                    format!("{:.3}", r.t_ceft / r.t_pvfs),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\nexpected shape: CEFT slightly worse (more metadata), same read parallelism");
}
