//! # parblast-bench
//!
//! Experiment harness: binaries that regenerate every figure of the
//! paper's evaluation (run with `cargo run -p parblast-bench --release
//! --bin <figN>`) and criterion micro-benchmarks (`cargo bench`).

#![warn(missing_docs)]

/// Minimal fixed-width table printer for experiment output.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Parse `--key value` style arguments; returns the value for `key`.
pub fn arg_value(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parse a `--key N` numeric argument with a default.
pub fn arg_u64(key: &str, default: u64) -> u64 {
    arg_value(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    #[test]
    fn arg_u64_default() {
        assert_eq!(super::arg_u64("--nope", 7), 7);
    }
}
