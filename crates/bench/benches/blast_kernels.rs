//! Criterion micro-benchmarks of the search-engine kernels: word
//! scanning, ungapped/gapped extension, statistics, and a full blastn
//! search — the compute side whose dominance over I/O drives the paper's
//! Amdahl observation (§4.3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use parblast_core::blast::{
    banded_global, extend_gapped, extend_ungapped, scorer_params, search_volume, DbStats,
    GapPenalties, NtLookup, Program, Scorer, SearchParams,
};
use parblast_core::seqdb::blastdb::DbSequence;
use parblast_core::seqdb::{extract_query, SeqType, SyntheticConfig, SyntheticNt, Volume};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_nt(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(0..4u8)).collect()
}

fn nt_scorer() -> Scorer {
    Scorer::Nucleotide {
        reward: 1,
        penalty: -3,
    }
}

fn bench_word_scan(c: &mut Criterion) {
    let query = random_nt(1, 568);
    let subject = random_nt(2, 1 << 20);
    let lookup = NtLookup::build(&query, 11);
    let mut g = c.benchmark_group("word_scan");
    g.throughput(Throughput::Bytes(subject.len() as u64));
    g.bench_function("w11_568nt_query_1MiB_subject", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            lookup.scan(&subject, |_, _| hits += 1);
            hits
        })
    });
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    // A planted 2 kb homologous region with 5 % divergence.
    let mut rng = StdRng::seed_from_u64(3);
    let core: Vec<u8> = (0..2048).map(|_| rng.random_range(0..4u8)).collect();
    let mut subject = core.clone();
    for _ in 0..100 {
        let p = rng.random_range(0..subject.len());
        subject[p] = (subject[p] + 1) & 3;
    }
    let mut g = c.benchmark_group("extension");
    g.bench_function("ungapped_2kb", |b| {
        b.iter(|| extend_ungapped(&core, &subject, 1024, 1024, 11, &nt_scorer(), 16))
    });
    g.bench_function("gapped_xdrop_2kb", |b| {
        b.iter(|| {
            extend_gapped(
                &core,
                &subject,
                1024,
                1024,
                &nt_scorer(),
                GapPenalties::blastn(),
                30,
            )
        })
    });
    g.bench_function("banded_traceback_512", |b| {
        b.iter(|| {
            banded_global(
                &core[..512],
                &subject[..512],
                &nt_scorer(),
                GapPenalties::blastn(),
                16,
            )
        })
    });
    g.finish();
}

fn bench_statistics(c: &mut Criterion) {
    c.bench_function("karlin_params_blastn", |b| {
        b.iter(|| scorer_params(&nt_scorer()).unwrap())
    });
    c.bench_function("karlin_params_blosum62", |b| {
        b.iter(|| scorer_params(&Scorer::Blosum62).unwrap())
    });
}

fn bench_full_search(c: &mut Criterion) {
    let mut gen = SyntheticNt::new(SyntheticConfig {
        total_residues: 1 << 20,
        seed: 7,
        ..Default::default()
    });
    let mut seqs = Vec::new();
    while let Some(s) = gen.next() {
        seqs.push(s);
    }
    let query = extract_query(&seqs[0].1, 568, 0.02, 1);
    let volume = Volume {
        seq_type: SeqType::Nucleotide,
        sequences: seqs
            .into_iter()
            .map(|(defline, codes)| DbSequence { defline, codes })
            .collect(),
    };
    let db = DbStats {
        residues: volume.residues(),
        nseq: volume.sequences.len() as u64,
    };
    let params = SearchParams::blastn();
    let mut g = c.benchmark_group("full_search");
    g.throughput(Throughput::Bytes(volume.residues()));
    g.sample_size(10);
    g.bench_function("blastn_568nt_vs_1M_residues", |b| {
        b.iter_batched(
            || (),
            |_| search_volume(Program::Blastn, &query, &volume, &params, db),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_word_scan,
    bench_extensions,
    bench_statistics,
    bench_full_search
);
criterion_main!(benches);
