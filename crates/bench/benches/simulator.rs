//! Criterion benchmarks of the discrete-event simulator itself: raw event
//! throughput and end-to-end simulated-BLAST runs (the cost of
//! regenerating a paper figure).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use parblast_core::hwsim::{Cluster, Ev, FsMsg, HwParams};
use parblast_core::mpiblast::{run_simblast, SimBlastConfig, SimScheme};
use parblast_core::simcore::{CompId, Component, Ctx, Engine, SimTime};

/// Self-perpetuating reader used to measure raw engine throughput.
struct Chain {
    fs: CompId,
    left: u64,
    offset: u64,
}
impl Component<Ev> for Chain {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, _ev: Ev) {
        if self.left == 0 {
            return;
        }
        self.left -= 1;
        ctx.send(
            self.fs,
            Ev::Fs(FsMsg::Read {
                file: 1,
                offset: self.offset % (1 << 30),
                len: 128 << 10,
                mmap: false,
                unit: 0,
                reply_to: ctx.self_id(),
                tag: 0,
            }),
        );
        self.offset += 128 << 10;
    }
}

fn bench_engine_events(c: &mut Criterion) {
    let n_reads = 10_000u64;
    let mut g = c.benchmark_group("des_engine");
    // Each read is ~5 events through fs + disk.
    g.throughput(Throughput::Elements(n_reads * 5));
    g.bench_function("disk_read_chain_10k", |b| {
        b.iter(|| {
            let mut eng: Engine<Ev> = Engine::new(1);
            let cl = Cluster::build(&mut eng, 1, HwParams::default());
            let chain = eng.add(Chain {
                fs: cl.nodes[0].fs,
                left: n_reads,
                offset: 0,
            });
            eng.schedule(SimTime::ZERO, chain, Ev::Timer(0));
            eng.run();
            eng.events_processed()
        })
    });
    g.finish();
}

fn bench_simblast_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("simblast");
    g.sample_size(10);
    g.bench_function("pvfs_8x8_256MB", |b| {
        b.iter(|| {
            run_simblast(&SimBlastConfig {
                nodes: 9,
                workers: 8,
                fragments: 8,
                db_bytes: 256 << 20,
                scheme: SimScheme::Pvfs {
                    servers: (0..8).collect(),
                },
                master_node: 8,
                warmup_s: 1.0,
                ..Default::default()
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine_events, bench_simblast_run);
criterion_main!(benches);
