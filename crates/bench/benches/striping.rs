//! Criterion benchmarks of the real parallel-I/O library: striped-read
//! throughput vs. server count and stripe size (the DESIGN.md stripe-size
//! ablation), and the mirrored store's dual-half read vs. plain striping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parblast_core::pio::{MirroredStore, ObjectStore, StripedStore};
use std::path::PathBuf;

const OBJECT: &str = "bench.obj";
const SIZE: usize = 8 << 20;

fn payload() -> Vec<u8> {
    (0..SIZE).map(|i| (i * 131 % 251) as u8).collect()
}

fn dirs(tag: &str, n: usize) -> Vec<PathBuf> {
    (0..n)
        .map(|i| std::env::temp_dir().join(format!("pio_bench_{tag}_{}_{i}", std::process::id())))
        .collect()
}

fn bench_striped_servers(c: &mut Criterion) {
    let data = payload();
    let mut g = c.benchmark_group("striped_read_by_servers");
    g.throughput(Throughput::Bytes(SIZE as u64));
    g.sample_size(20);
    for servers in [1usize, 2, 4, 8] {
        let ds = dirs("srv", servers);
        let st = StripedStore::new(ds.clone(), 64 << 10).unwrap();
        st.put(OBJECT, &data).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(servers), &servers, |b, _| {
            let mut r = st.open(OBJECT).unwrap();
            let mut buf = vec![0u8; SIZE];
            b.iter(|| r.read_at(0, &mut buf).unwrap())
        });
        for d in ds {
            std::fs::remove_dir_all(d).ok();
        }
    }
    g.finish();
}

fn bench_stripe_size(c: &mut Criterion) {
    // DESIGN.md ablation: stripe size vs read throughput at 4 servers.
    let data = payload();
    let mut g = c.benchmark_group("striped_read_by_stripe_size");
    g.throughput(Throughput::Bytes(SIZE as u64));
    g.sample_size(20);
    for stripe_kib in [16u64, 64, 256, 1024] {
        let ds = dirs(&format!("ss{stripe_kib}"), 4);
        let st = StripedStore::new(ds.clone(), stripe_kib << 10).unwrap();
        st.put(OBJECT, &data).unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{stripe_kib}KiB")),
            &stripe_kib,
            |b, _| {
                let mut r = st.open(OBJECT).unwrap();
                let mut buf = vec![0u8; SIZE];
                b.iter(|| r.read_at(0, &mut buf).unwrap())
            },
        );
        for d in ds {
            std::fs::remove_dir_all(d).ok();
        }
    }
    g.finish();
}

fn bench_mirrored_vs_striped(c: &mut Criterion) {
    // CEFT's dual-half read against plain RAID-0 with the same number of
    // physical directories (the Figure 7 comparison on real files).
    let data = payload();
    let mut g = c.benchmark_group("mirrored_vs_striped_8_dirs");
    g.throughput(Throughput::Bytes(SIZE as u64));
    g.sample_size(20);
    {
        let ds = dirs("flat8", 8);
        let st = StripedStore::new(ds.clone(), 64 << 10).unwrap();
        st.put(OBJECT, &data).unwrap();
        g.bench_function("striped_8", |b| {
            let mut r = st.open(OBJECT).unwrap();
            let mut buf = vec![0u8; SIZE];
            b.iter(|| r.read_at(0, &mut buf).unwrap())
        });
        for d in ds {
            std::fs::remove_dir_all(d).ok();
        }
    }
    {
        let p = dirs("mp4", 4);
        let m = dirs("mm4", 4);
        let st = MirroredStore::new(p.clone(), m.clone(), 64 << 10).unwrap();
        st.put(OBJECT, &data).unwrap();
        g.bench_function("mirrored_4_plus_4_dual_half", |b| {
            let mut r = st.open(OBJECT).unwrap();
            let mut buf = vec![0u8; SIZE];
            b.iter(|| r.read_at(0, &mut buf).unwrap())
        });
        for d in p.into_iter().chain(m) {
            std::fs::remove_dir_all(d).ok();
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_striped_servers,
    bench_stripe_size,
    bench_mirrored_vs_striped
);
criterion_main!(benches);
