//! Client-side resilience primitives: retry budgets, circuit breaking,
//! and adaptive hedging.
//!
//! All three are deterministic state machines over explicit inputs — no
//! hidden clocks, no randomness — so unit tests drive them with synthetic
//! nanosecond timestamps and chaos runs replay identically.
//!
//! * [`RetryBudget`] — a token bucket *for retries*, not requests. Each
//!   success deposits `per_success` tokens (capped at `capacity`); each
//!   retry withdraws one whole token. Under a fault rate `f`, the budget
//!   sustains retries while `f ≤ per_success / (1 + per_success)`; past
//!   that, retries are refused and the shedding server sees the original
//!   offered load instead of a multiplied retry storm. This is the
//!   Finagle/SRE-book "retry budget" in place of a naive per-request
//!   retry cap.
//! * [`CircuitBreaker`] — per-server, three states. `Closed` counts
//!   *consecutive* transport failures; at `consecutive_failures` it trips
//!   to `Open` and every call is refused locally (fail-fast, no socket
//!   churn) until `cooldown_ns` elapses, after which exactly one probe is
//!   let through (`HalfOpen`); probe success closes the breaker, probe
//!   failure re-opens it with a fresh cooldown.
//! * [`LatencyTracker`] + [`HedgeConfig`] — a [`LogHistogram`] of attempt
//!   latencies whose p95 (clamped to `[min_delay_us, max_delay_us]`)
//!   becomes the hedging delay: if the primary Submit has not answered
//!   within that time, a second Submit for the same query is raced
//!   against it and the loser is cancelled. Hedging only arms once
//!   `min_samples` successes have been observed — before that, there is
//!   no p95 worth trusting.

use parblast_simcore::LogHistogram;

/// Knobs for [`RetryBudget`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetConfig {
    /// Most retry tokens the bucket can hold.
    pub capacity: f64,
    /// Tokens deposited by each successful attempt.
    pub per_success: f64,
    /// Tokens the bucket starts with (a small grace allowance so cold
    /// clients can survive a flaky first connection).
    pub initial: f64,
}

impl Default for BudgetConfig {
    fn default() -> Self {
        BudgetConfig {
            capacity: 10.0,
            per_success: 0.1,
            initial: 10.0,
        }
    }
}

impl BudgetConfig {
    /// A budget that never refuses a retry (pre-PR-10 behavior).
    pub fn unlimited() -> Self {
        BudgetConfig {
            capacity: f64::INFINITY,
            per_success: 0.0,
            initial: f64::INFINITY,
        }
    }
}

/// Token bucket limiting the *rate of retries* to a fraction of the rate
/// of successes. See the module docs for the math.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    cfg: BudgetConfig,
    tokens: f64,
}

impl RetryBudget {
    /// Bucket holding `cfg.initial` tokens (clamped to capacity).
    pub fn new(cfg: BudgetConfig) -> Self {
        RetryBudget {
            cfg,
            tokens: cfg.initial.min(cfg.capacity).max(0.0),
        }
    }

    /// Withdraw one token for a retry. `false` = budget exhausted; the
    /// caller must surface the last error instead of retrying.
    pub fn try_spend(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Deposit the per-success refill (capped).
    pub fn deposit(&mut self) {
        self.tokens = (self.tokens + self.cfg.per_success).min(self.cfg.capacity);
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// Knobs for [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive transport failures that trip the breaker.
    pub consecutive_failures: u32,
    /// Nanoseconds the breaker stays open before admitting one probe.
    pub cooldown_ns: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            consecutive_failures: 8,
            cooldown_ns: 500_000_000, // 500 ms
        }
    }
}

impl BreakerConfig {
    /// A breaker that never opens.
    pub fn disabled() -> Self {
        BreakerConfig {
            consecutive_failures: u32::MAX,
            cooldown_ns: 0,
        }
    }
}

/// Observable breaker state (the internal machine also tracks the failure
/// count and open timestamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; consecutive failures are being counted.
    Closed,
    /// Tripped: calls are refused locally until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe is in flight to test the server.
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
enum Machine {
    Closed { failures: u32 },
    Open { since_ns: u64 },
    HalfOpen,
}

/// Per-server circuit breaker with half-open probes. All transitions take
/// an explicit `now_ns` so tests and replays are deterministic.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Machine,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: Machine::Closed { failures: 0 },
            trips: 0,
        }
    }

    /// May an attempt proceed at `now_ns`? `Open` refuses until the
    /// cooldown elapses, then transitions to `HalfOpen` and admits the
    /// probe.
    pub fn allow(&mut self, now_ns: u64) -> bool {
        match self.state {
            Machine::Closed { .. } | Machine::HalfOpen => true,
            Machine::Open { since_ns } => {
                if now_ns.saturating_sub(since_ns) >= self.cfg.cooldown_ns {
                    self.state = Machine::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// An attempt reached the server and got *any* typed answer (including
    /// a Shed — a deliberate refusal proves the server is alive).
    pub fn record_success(&mut self) {
        self.state = Machine::Closed { failures: 0 };
    }

    /// An attempt failed at the transport layer (dial error, reset,
    /// timeout, EOF mid-frame).
    pub fn record_failure(&mut self, now_ns: u64) {
        match self.state {
            Machine::Closed { failures } => {
                let failures = failures.saturating_add(1);
                if failures >= self.cfg.consecutive_failures {
                    self.state = Machine::Open { since_ns: now_ns };
                    self.trips += 1;
                } else {
                    self.state = Machine::Closed { failures };
                }
            }
            // A failed probe re-opens with a fresh cooldown.
            Machine::HalfOpen => {
                self.state = Machine::Open { since_ns: now_ns };
                self.trips += 1;
            }
            Machine::Open { .. } => {}
        }
    }

    /// Observable state.
    pub fn state(&self) -> BreakerState {
        match self.state {
            Machine::Closed { .. } => BreakerState::Closed,
            Machine::Open { .. } => BreakerState::Open,
            Machine::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

/// Knobs for hedged Submits. Disabled by default: hedging doubles worst-
/// case server load, so it is an explicit opt-in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Arm hedging at all?
    pub enabled: bool,
    /// Successful attempts observed before the adaptive delay is trusted.
    pub min_samples: u64,
    /// Lower clamp on the hedge delay (µs) — never hedge faster than this.
    pub min_delay_us: u64,
    /// Upper clamp on the hedge delay (µs).
    pub max_delay_us: u64,
    /// Fixed hedge delay in µs (0 = adaptive p95). Tests pin this to make
    /// hedge firing deterministic.
    pub fixed_us: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: false,
            min_samples: 16,
            min_delay_us: 1_000,
            max_delay_us: 1_000_000,
            fixed_us: 0,
        }
    }
}

/// Histogram of successful-attempt latencies feeding the hedge delay.
#[derive(Debug, Clone, Default)]
pub struct LatencyTracker {
    hist: LogHistogram,
}

impl LatencyTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        LatencyTracker::default()
    }

    /// Record one successful attempt's latency.
    pub fn record_us(&mut self, us: u64) {
        self.hist.record(us);
    }

    /// Successful attempts recorded.
    pub fn samples(&self) -> u64 {
        self.hist.summary().count()
    }

    /// Observed p95 latency in µs (0 with no samples).
    pub fn p95_us(&self) -> u64 {
        self.hist.p95() as u64
    }

    /// The hedge delay to use now, or `None` if hedging should not arm
    /// (disabled, or not enough samples for an adaptive delay).
    pub fn hedge_delay_us(&self, cfg: &HedgeConfig) -> Option<u64> {
        if !cfg.enabled {
            return None;
        }
        if cfg.fixed_us > 0 {
            return Some(cfg.fixed_us);
        }
        if self.samples() < cfg.min_samples {
            return None;
        }
        Some(self.p95_us().clamp(cfg.min_delay_us, cfg.max_delay_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_spends_down_then_refuses() {
        let mut b = RetryBudget::new(BudgetConfig {
            capacity: 3.0,
            per_success: 0.5,
            initial: 2.0,
        });
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend(), "third retry exceeds the initial allowance");
        // Two successes deposit one whole token.
        b.deposit();
        assert!(!b.try_spend(), "half a token is not a retry");
        b.deposit();
        assert!(b.try_spend());
    }

    #[test]
    fn budget_caps_at_capacity() {
        let mut b = RetryBudget::new(BudgetConfig {
            capacity: 2.0,
            per_success: 1.0,
            initial: 0.0,
        });
        for _ in 0..100 {
            b.deposit();
        }
        assert!((b.tokens() - 2.0).abs() < 1e-12);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend());
    }

    #[test]
    fn budget_unlimited_never_refuses() {
        let mut b = RetryBudget::new(BudgetConfig::unlimited());
        for _ in 0..10_000 {
            assert!(b.try_spend());
        }
    }

    #[test]
    fn budget_initial_is_clamped_to_capacity() {
        let b = RetryBudget::new(BudgetConfig {
            capacity: 1.0,
            per_success: 0.1,
            initial: 50.0,
        });
        assert!((b.tokens() - 1.0).abs() < 1e-12);
        let b = RetryBudget::new(BudgetConfig {
            capacity: 1.0,
            per_success: 0.1,
            initial: -3.0,
        });
        assert_eq!(b.tokens(), 0.0);
    }

    #[test]
    fn breaker_trips_after_consecutive_failures() {
        let cfg = BreakerConfig {
            consecutive_failures: 3,
            cooldown_ns: 100,
        };
        let mut br = CircuitBreaker::new(cfg);
        assert!(br.allow(0));
        br.record_failure(10);
        br.record_failure(20);
        assert_eq!(br.state(), BreakerState::Closed);
        assert!(br.allow(20));
        br.record_failure(30);
        assert_eq!(br.state(), BreakerState::Open);
        assert_eq!(br.trips(), 1);
        assert!(!br.allow(30), "open breaker fails fast");
        assert!(!br.allow(129), "cooldown not yet elapsed");
    }

    #[test]
    fn breaker_success_resets_the_count() {
        let cfg = BreakerConfig {
            consecutive_failures: 3,
            cooldown_ns: 100,
        };
        let mut br = CircuitBreaker::new(cfg);
        br.record_failure(1);
        br.record_failure(2);
        br.record_success();
        br.record_failure(3);
        br.record_failure(4);
        // Non-consecutive failures never trip it.
        assert_eq!(br.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_half_open_probe_closes_or_reopens() {
        let cfg = BreakerConfig {
            consecutive_failures: 1,
            cooldown_ns: 100,
        };
        let mut br = CircuitBreaker::new(cfg);
        br.record_failure(0);
        assert_eq!(br.state(), BreakerState::Open);
        // Cooldown elapses → exactly one probe admitted.
        assert!(br.allow(100));
        assert_eq!(br.state(), BreakerState::HalfOpen);
        // Probe fails → open again, with a *fresh* cooldown from now.
        br.record_failure(100);
        assert_eq!(br.state(), BreakerState::Open);
        assert!(!br.allow(150));
        assert!(br.allow(200));
        // This probe succeeds → closed.
        br.record_success();
        assert_eq!(br.state(), BreakerState::Closed);
        assert!(br.allow(201));
        assert_eq!(br.trips(), 2);
    }

    #[test]
    fn breaker_disabled_never_opens() {
        let mut br = CircuitBreaker::new(BreakerConfig::disabled());
        for t in 0..100_000u64 {
            br.record_failure(t);
        }
        assert_eq!(br.state(), BreakerState::Closed);
        assert!(br.allow(100_000));
    }

    #[test]
    fn breaker_cooldown_saturates_on_clock_skew() {
        // now_ns earlier than since_ns (monotonic source restarted) must
        // not panic or underflow into an instant re-probe window.
        let cfg = BreakerConfig {
            consecutive_failures: 1,
            cooldown_ns: 100,
        };
        let mut br = CircuitBreaker::new(cfg);
        br.record_failure(1_000);
        assert!(!br.allow(0));
        assert!(br.allow(1_100));
    }

    #[test]
    fn hedge_disabled_or_cold_returns_none() {
        let t = LatencyTracker::new();
        assert_eq!(t.hedge_delay_us(&HedgeConfig::default()), None);
        let armed = HedgeConfig {
            enabled: true,
            min_samples: 4,
            ..Default::default()
        };
        let mut t = LatencyTracker::new();
        t.record_us(100);
        assert_eq!(t.hedge_delay_us(&armed), None, "below min_samples");
    }

    #[test]
    fn hedge_adaptive_delay_tracks_p95_with_clamps() {
        let cfg = HedgeConfig {
            enabled: true,
            min_samples: 10,
            min_delay_us: 50,
            max_delay_us: 5_000,
            fixed_us: 0,
        };
        let mut t = LatencyTracker::new();
        for _ in 0..100 {
            t.record_us(1_000);
        }
        let d = t.hedge_delay_us(&cfg).unwrap();
        assert!((500..=2_000).contains(&d), "p95 ≈ 1 ms, got {d} µs");
        // Fast server: p95 below the floor clamps up.
        let mut fast = LatencyTracker::new();
        for _ in 0..100 {
            fast.record_us(1);
        }
        assert_eq!(fast.hedge_delay_us(&cfg), Some(50));
        // Slow server: p95 above the ceiling clamps down.
        let mut slow = LatencyTracker::new();
        for _ in 0..100 {
            slow.record_us(1_000_000);
        }
        assert_eq!(slow.hedge_delay_us(&cfg), Some(5_000));
    }

    #[test]
    fn hedge_fixed_delay_overrides_adaptive() {
        let cfg = HedgeConfig {
            enabled: true,
            fixed_us: 777,
            ..Default::default()
        };
        let t = LatencyTracker::new();
        assert_eq!(t.hedge_delay_us(&cfg), Some(777), "fixed needs no samples");
    }
}
