//! The execution bridge: what a shard's exec thread calls to turn a
//! scan-sharing batch of raw query bytes into rendered result payloads.
//!
//! [`BlastRunner`] is the production implementation — it drives
//! [`parblast_mpiblast::ParallelBlast::run_batch`] against the real `pio`
//! store and renders each query's merged hits with
//! [`parblast_blast::tabular`], the *same* rendering
//! `serve::serve_batched` uses, so a result served over the wire is
//! byte-identical to one computed in-process (pinned across seeds in
//! `tests/determinism.rs`). [`EchoRunner`] is a deterministic stand-in
//! for protocol and scheduling tests that must not pay for real searches.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parblast_blast::tabular;
use parblast_mpiblast::ParallelBlast;

/// Why a batch failed to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunnerError {
    /// Unrecoverable data corruption (`pio` checksum mismatch with no
    /// clean redundant copy). **Not retryable** — the same platter bytes
    /// come back on every attempt — so the server reports it with
    /// `ResultStatus::Corrupt` and the client surfaces it without
    /// burning retry budget, exactly like `pvfs::retry` does.
    Corrupt,
    /// Any other execution failure (retryable at the client's choice).
    Other(String),
}

impl std::fmt::Display for RunnerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunnerError::Corrupt => write!(f, "unrecoverable data corruption"),
            RunnerError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RunnerError {}

/// Cost and results of one executed batch.
#[derive(Debug, Clone)]
pub struct RunnerOutput {
    /// One rendered result payload per query, in submission order.
    pub per_query: Vec<Vec<u8>>,
    /// Seconds the pass spent on I/O (fetching fragments).
    pub scan_s: f64,
    /// Seconds the pass spent computing.
    pub search_s: f64,
    /// Database bytes the pass read (0 when the executor cannot tell).
    pub bytes_read: u64,
    /// Seed-scan kernel passes the batch executed across all fragments
    /// (the fused kernel merges up to 8 queries into one pass).
    pub kernel_passes: u64,
    /// Kernel passes the fused kernel avoided versus per-query scanning.
    pub passes_saved: u64,
}

/// Something that can execute a scan-sharing batch of raw queries.
pub trait BatchRunner: Send + Sync {
    /// Run `queries` as one batch; return one payload per query, in order.
    fn run_batch(&self, queries: &[Vec<u8>]) -> Result<RunnerOutput, RunnerError>;
}

fn classify(e: io::Error) -> RunnerError {
    if parblast_pio::is_corrupt(&e) {
        RunnerError::Corrupt
    } else {
        RunnerError::Other(e.to_string())
    }
}

/// The production runner: a configured [`ParallelBlast`] job over the
/// real `pio` store. One `run_batch` call is one scan-sharing pass —
/// every fragment is fetched once and searched with every query in the
/// batch.
pub struct BlastRunner {
    /// The underlying parallel job (scheme, fragments, workers, params).
    pub job: ParallelBlast,
    /// Database bytes one full pass reads (the staged fragment bytes),
    /// reported per batch so the serving counters can track I/O savings.
    pub bytes_per_pass: u64,
}

impl BlastRunner {
    /// Wrap `job`; `bytes_per_pass` is the summed size of its staged
    /// fragments (pass 0 if unknown).
    pub fn new(job: ParallelBlast, bytes_per_pass: u64) -> Self {
        BlastRunner {
            job,
            bytes_per_pass,
        }
    }
}

impl BatchRunner for BlastRunner {
    fn run_batch(&self, queries: &[Vec<u8>]) -> Result<RunnerOutput, RunnerError> {
        let t0 = Instant::now();
        let out = self.job.run_batch(queries).map_err(classify)?;
        let wall = t0.elapsed().as_secs_f64();
        Ok(RunnerOutput {
            per_query: out
                .per_query
                .iter()
                .map(|hits| tabular("query", hits).into_bytes())
                .collect(),
            scan_s: out.io_fetch_s,
            search_s: (wall - out.io_stall_s).max(0.0),
            bytes_read: self.bytes_per_pass,
            kernel_passes: out.kernel_passes,
            passes_saved: out.passes_saved,
        })
    }
}

/// Deterministic test runner: echoes each query back reversed behind an
/// `echo:` tag, optionally sleeping `delay` per batch to simulate a scan
/// pass (what the drain-under-load tests lean on). Counts its batches so
/// tests can assert scan sharing happened.
#[derive(Debug, Default)]
pub struct EchoRunner {
    /// Artificial per-batch execution time.
    pub delay: Duration,
    batches: AtomicU64,
}

impl EchoRunner {
    /// Runner with an artificial per-batch delay.
    pub fn with_delay(delay: Duration) -> Self {
        EchoRunner {
            delay,
            batches: AtomicU64::new(0),
        }
    }

    /// Batches executed so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// The payload this runner produces for `query`.
    pub fn expected(query: &[u8]) -> Vec<u8> {
        let mut out = b"echo:".to_vec();
        out.extend(query.iter().rev());
        out
    }
}

impl BatchRunner for EchoRunner {
    fn run_batch(&self, queries: &[Vec<u8>]) -> Result<RunnerOutput, RunnerError> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        Ok(RunnerOutput {
            per_query: queries.iter().map(|q| Self::expected(q)).collect(),
            scan_s: self.delay.as_secs_f64(),
            search_s: 0.0,
            bytes_read: 0,
            kernel_passes: 1,
            passes_saved: queries.len() as u64 - 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_runner_is_deterministic_and_counts_batches() {
        let r = EchoRunner::default();
        let queries = vec![vec![1, 2, 3], vec![9]];
        let a = r.run_batch(&queries).unwrap();
        let b = r.run_batch(&queries).unwrap();
        assert_eq!(a.per_query, b.per_query);
        assert_eq!(a.per_query[0], b"echo:\x03\x02\x01".to_vec());
        assert_eq!(r.batches(), 2);
    }

    #[test]
    fn corruption_classifies_as_non_retryable() {
        let e = parblast_pio::integrity::corrupt_error(std::path::Path::new("/x"), 3);
        assert_eq!(classify(e), RunnerError::Corrupt);
        let other = io::Error::new(io::ErrorKind::NotFound, "missing fragment");
        assert!(matches!(classify(other), RunnerError::Other(_)));
    }
}
