//! The thread-per-core sharded TCP daemon.
//!
//! ```text
//!            accept                    shard 0..S-1 (thread-per-core pair)
//!  clients ─────────▶ acceptor ──┬──▶ ┌──────────────────────────────────┐
//!   (TCP)             (rr hand-  │    │ IO thread: poll(2) loop          │
//!                      off)      │    │   decode frames → admission:     │
//!                                │    │   drain? quota? queue full? ──▶  │
//!                                │    │   typed Shed · else enqueue      │
//!                                └──▶ │ exec thread: take_batch(B) ──▶   │
//!                                     │   BatchRunner (one scan pass)    │
//!                                     │   → Result frames → IO outbox    │
//!                                     └──────────────────────────────────┘
//! ```
//!
//! Each shard owns its connections, its `serve::AdmissionQueue`, and a
//! batch-exec thread; the only cross-shard state is the tenant quota map,
//! the drain flag, and the relaxed-atomic counters the `Stats` frame
//! snapshots. The contract the tests and bench pin: **every accepted
//! `Submit` is answered by exactly one `Result`, and every refused one by
//! exactly one typed `Shed`** — including through a graceful drain, which
//! stops admission, finishes all queued and in-flight batches, flushes
//! every outbox, and only then closes the sockets and exits.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel;
use parblast_serve::{AdmissionQueue, BatchResult, Query, ServeCounters, ServeMetrics};
use parblast_simcore::SimTime;
use polling::{Event, Poller};

use crate::proto::{encode_frame, Frame, FrameReader, ResultStatus, ShedReason, StatsSnapshot};
use crate::quota::{QuotaConfig, TenantQuotas};
use crate::runner::{BatchRunner, RunnerError};

/// Daemon configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Shard (thread-pair) count; connections are spread round-robin.
    pub shards: usize,
    /// Per-shard admission-queue capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Scan-sharing batch cap per execution pass.
    pub max_batch: usize,
    /// Per-tenant token-bucket quota; `None` admits everything.
    pub quota: Option<QuotaConfig>,
    /// Slowloris guard: a connection that has held a *partial* frame
    /// this long without completing it is evicted (counted in
    /// `StatsSnapshot::evicted`, pending queries cancelled). `None`
    /// waits forever.
    pub read_deadline: Option<Duration>,
    /// Most Submits one connection may have accepted-but-unanswered;
    /// the excess is shed `QueueFull` before touching quota or queue, so
    /// one runaway pipeliner cannot monopolize a shard's slots.
    pub max_inflight_per_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 2,
            queue_capacity: 256,
            max_batch: 4,
            quota: None,
            read_deadline: Some(Duration::from_secs(10)),
            max_inflight_per_conn: 1024,
        }
    }
}

/// One accepted query waiting in (or leaving) a shard's queue.
struct PendingQuery {
    conn: usize,
    id: u64,
    query: Vec<u8>,
}

/// Shard state shared between its IO and exec threads.
struct ShardState {
    queue: AdmissionQueue,
    slab: Vec<Option<PendingQuery>>,
    free: Vec<usize>,
    // `(conn, id)` pairs cancelled while still queued.
    cancelled: Vec<(usize, u64)>,
    metrics: ServeMetrics,
}

impl ShardState {
    fn insert(&mut self, p: PendingQuery) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.slab[i] = Some(p);
                i
            }
            None => {
                self.slab.push(Some(p));
                self.slab.len() - 1
            }
        }
    }

    fn remove(&mut self, i: usize) -> PendingQuery {
        let p = self.slab[i].take().expect("slab slot occupied");
        self.free.push(i);
        p
    }

    fn in_flight(&self) -> u64 {
        (self.slab.len() - self.free.len()) as u64
    }
}

struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
    // Exec → IO: encoded response frames routed by connection key.
    results_tx: channel::Sender<(usize, Vec<u8>)>,
    results_rx: channel::Receiver<(usize, Vec<u8>)>,
    poller: Poller,
    served: AtomicU64,
    counters: Arc<ServeCounters>,
    exec_done: AtomicBool,
}

/// State shared by every thread of one daemon.
struct Shared {
    epoch: Instant,
    draining: AtomicBool,
    quotas: Option<TenantQuotas>,
    shards: Vec<Shard>,
    accept_poller: Poller,
    read_deadline: Option<Duration>,
    max_inflight_per_conn: usize,
    submits: AtomicU64,
    accepted: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_quota: AtomicU64,
    shed_draining: AtomicU64,
    expired: AtomicU64,
    cancelled: AtomicU64,
    evicted: AtomicU64,
    next_query_id: AtomicU64,
}

impl Shared {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Wake every blocked thread (drain signal, stats poke).
    fn notify_all(&self) {
        let _ = self.accept_poller.notify();
        for s in &self.shards {
            let _ = s.poller.notify();
            s.cv.notify_all();
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        let mut agg = parblast_serve::CountersSnapshot::default();
        let mut per_shard_served = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            let c = s.counters.snapshot();
            agg.batches += c.batches;
            agg.bytes_read += c.bytes_read;
            agg.kernel_passes += c.kernel_passes;
            agg.passes_saved += c.passes_saved;
            per_shard_served.push(s.served.load(Ordering::Relaxed));
        }
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            served: per_shard_served.iter().sum(),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_quota: self.shed_quota.load(Ordering::Relaxed),
            shed_draining: self.shed_draining.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            batches: agg.batches,
            bytes_read: agg.bytes_read,
            kernel_passes: agg.kernel_passes,
            passes_saved: agg.passes_saved,
            submits: self.submits.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            per_shard_served,
        }
    }
}

/// A running daemon: the handle owns the threads and the shared state.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Programmatic drain: equivalent to receiving a `Drain` frame.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.notify_all();
    }

    /// Current counter snapshot (lock-free).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Wait for the daemon to finish draining and return final counters.
    /// Blocks until a `Drain` frame arrives or [`Self::drain`] is called.
    pub fn join(self) -> StatsSnapshot {
        for t in self.threads {
            let _ = t.join();
        }
        self.shared.snapshot()
    }
}

/// The daemon entry point.
pub struct NetServer;

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start the shard threads.
    /// `runner` executes batches; it is shared by every shard, so two
    /// shards may call it concurrently.
    pub fn start(
        addr: &str,
        config: ServerConfig,
        runner: Arc<dyn BatchRunner>,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let shards = config.shards.max(1);

        let mut shard_vec = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (results_tx, results_rx) = channel::unbounded();
            let metrics = ServeMetrics::new();
            let counters = metrics.counters();
            shard_vec.push(Shard {
                state: Mutex::new(ShardState {
                    queue: AdmissionQueue::new(config.queue_capacity),
                    slab: Vec::new(),
                    free: Vec::new(),
                    cancelled: Vec::new(),
                    metrics,
                }),
                cv: Condvar::new(),
                results_tx,
                results_rx,
                poller: Poller::new()?,
                served: AtomicU64::new(0),
                counters,
                exec_done: AtomicBool::new(false),
            });
        }

        let shared = Arc::new(Shared {
            epoch: Instant::now(),
            draining: AtomicBool::new(false),
            quotas: config.quota.map(TenantQuotas::new),
            shards: shard_vec,
            accept_poller: Poller::new()?,
            read_deadline: config.read_deadline,
            max_inflight_per_conn: config.max_inflight_per_conn.max(1),
            submits: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_quota: AtomicU64::new(0),
            shed_draining: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            next_query_id: AtomicU64::new(1),
        });

        let mut threads = Vec::new();
        // Per-shard connection hand-off channels.
        let mut conn_txs = Vec::with_capacity(shards);
        for shard_ix in 0..shards {
            let (conn_tx, conn_rx) = channel::unbounded::<TcpStream>();
            conn_txs.push(conn_tx);
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("net-io-{shard_ix}"))
                    .spawn(move || io_thread(sh, shard_ix, conn_rx))?,
            );
            let sh = Arc::clone(&shared);
            let rn = Arc::clone(&runner);
            let max_batch = config.max_batch.max(1);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("net-exec-{shard_ix}"))
                    .spawn(move || exec_thread(sh, shard_ix, rn, max_batch))?,
            );
        }
        let sh = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || accept_thread(sh, listener, conn_txs))?,
        );

        Ok(ServerHandle {
            addr: bound,
            shared,
            threads,
        })
    }
}

/// Accept loop: poll the listener, hand new connections to shards
/// round-robin, exit when draining.
fn accept_thread(
    shared: Arc<Shared>,
    listener: TcpListener,
    conn_txs: Vec<channel::Sender<TcpStream>>,
) {
    let _ = shared.accept_poller.add(&listener, Event::readable(0));
    let mut next = 0usize;
    let mut events = Vec::new();
    while !shared.draining.load(Ordering::SeqCst) {
        events.clear();
        let _ = shared
            .accept_poller
            .wait(&mut events, Some(Duration::from_millis(50)));
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_ok() && stream.set_nodelay(true).is_ok() {
                        let shard = next % conn_txs.len();
                        next += 1;
                        if conn_txs[shard].send(stream).is_ok() {
                            let _ = shared.shards[shard].poller.notify();
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }
    // Dropping conn_txs closes the hand-off channels.
}

/// One connection owned by a shard IO thread.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    outbox: Vec<u8>,
    // Interest currently registered with the poller.
    writable_armed: bool,
    closed: bool,
    // Submits accepted into the queue but not yet answered.
    inflight: usize,
    // When the oldest byte of the current *partial* frame arrived; the
    // slowloris guard evicts the connection if the frame does not
    // complete within `read_deadline`.
    partial_since: Option<Instant>,
}

impl Conn {
    fn push_frame(&mut self, frame: &Frame) {
        self.outbox.extend_from_slice(&encode_frame(frame));
    }

    /// Write as much of the outbox as the socket accepts.
    fn flush(&mut self) {
        while !self.outbox.is_empty() {
            match self.stream.write(&self.outbox) {
                Ok(0) => {
                    self.closed = true;
                    return;
                }
                Ok(n) => {
                    self.outbox.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    return;
                }
            }
        }
    }
}

/// Shard IO loop: poll owned connections, decode frames, apply admission,
/// route exec results back out, and during drain keep flushing until
/// every accepted query's answer is on the wire.
fn io_thread(shared: Arc<Shared>, shard_ix: usize, conn_rx: channel::Receiver<TcpStream>) {
    let shard = &shared.shards[shard_ix];
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_key = 0usize;
    let mut events = Vec::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        events.clear();
        let _ = shard
            .poller
            .wait(&mut events, Some(Duration::from_millis(25)));

        // New connections from the acceptor.
        while let Some(stream) = conn_rx.try_recv() {
            let key = next_key;
            next_key += 1;
            let _ = shard.poller.add(&stream, Event::readable(key));
            conns.insert(
                key,
                Conn {
                    stream,
                    reader: FrameReader::new(),
                    outbox: Vec::new(),
                    writable_armed: false,
                    closed: false,
                    inflight: 0,
                    partial_since: None,
                },
            );
        }

        // Exec results → owning connection's outbox. A result whose
        // connection is gone is dropped (the client hung up on us).
        // Every routed message answers exactly one accepted Submit, so
        // it releases one in-flight slot.
        while let Some((key, bytes)) = shard.results_rx.try_recv() {
            if let Some(conn) = conns.get_mut(&key) {
                conn.outbox.extend_from_slice(&bytes);
                conn.inflight = conn.inflight.saturating_sub(1);
            }
        }

        // Readable connections: pull bytes, decode, handle.
        let ready: Vec<usize> = events
            .iter()
            .filter(|e| e.readable)
            .map(|e| e.key)
            .collect();
        for key in ready {
            let Some(conn) = conns.get_mut(&key) else {
                continue;
            };
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.closed = true;
                        break;
                    }
                    Ok(n) => conn.reader.feed(&buf[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.closed = true;
                        break;
                    }
                }
            }
            loop {
                match conn.reader.next_frame() {
                    Ok(Some(frame)) => handle_frame(&shared, shard_ix, key, conn, frame),
                    Ok(None) => break,
                    Err(_) => {
                        // Protocol violation: this connection cannot
                        // resynchronize — drop it.
                        conn.closed = true;
                        break;
                    }
                }
            }
            // Slowloris bookkeeping: a nonempty reader buffer is a
            // partial frame. The clock starts when the partial appears
            // and only resets when a frame *completes* — trickling one
            // byte per tick buys no extension.
            if conn.reader.buffered() == 0 {
                conn.partial_since = None;
            } else if conn.partial_since.is_none() {
                conn.partial_since = Some(Instant::now());
            }
        }

        // Evict connections whose partial frame outlived the read
        // deadline: they hold decode state forever and starve nothing
        // else out, the classic slowloris shape.
        if let Some(deadline) = shared.read_deadline {
            for conn in conns.values_mut() {
                if !conn.closed
                    && conn
                        .partial_since
                        .is_some_and(|t0| t0.elapsed() >= deadline)
                {
                    conn.closed = true;
                    shared.evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // Flush every outbox; arm/disarm write interest as needed.
        for (key, conn) in conns.iter_mut() {
            if !conn.outbox.is_empty() {
                conn.flush();
            }
            let want_writable = !conn.outbox.is_empty();
            if want_writable != conn.writable_armed {
                let interest = if want_writable {
                    Event::all(*key)
                } else {
                    Event::readable(*key)
                };
                let _ = shard.poller.modify(&conn.stream, interest);
                conn.writable_armed = want_writable;
            }
        }

        // Reap closed connections. A dead connection's still-queued
        // Submits are flagged cancelled so the exec thread releases
        // their queue slots (as Shed(Cancelled), routed to the gone
        // connection and dropped) instead of wasting a scan pass on
        // answers nobody will read — and, because the slab entry is
        // consumed exactly once, the server provably cannot
        // double-answer a query whose connection died mid-frame.
        let dead: Vec<usize> = conns
            .iter()
            .filter(|(_, c)| c.closed)
            .map(|(k, _)| *k)
            .collect();
        for key in dead {
            if let Some(conn) = conns.remove(&key) {
                let _ = shard.poller.delete(&conn.stream);
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            }
            let mut st = shard.state.lock().unwrap();
            let orphaned: Vec<(usize, u64)> = st
                .slab
                .iter()
                .flatten()
                .filter(|p| p.conn == key)
                .map(|p| (key, p.id))
                .collect();
            let mut flagged = false;
            for pair in orphaned {
                if !st.cancelled.contains(&pair) {
                    st.cancelled.push(pair);
                    flagged = true;
                }
            }
            drop(st);
            if flagged {
                shard.cv.notify_one();
            }
        }

        // Drain exit: admission stopped, exec finished everything it will
        // ever get, all results routed, all outboxes flushed.
        if shared.draining.load(Ordering::SeqCst)
            && shard.exec_done.load(Ordering::SeqCst)
            && shard.results_rx.is_empty()
            && conns.values().all(|c| c.outbox.is_empty())
        {
            for (_, conn) in conns.iter() {
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            }
            return;
        }
    }
}

/// Decode-side frame dispatch for one connection.
fn handle_frame(shared: &Arc<Shared>, shard_ix: usize, key: usize, conn: &mut Conn, frame: Frame) {
    let shard = &shared.shards[shard_ix];
    match frame {
        Frame::Submit {
            id,
            tenant,
            priority,
            deadline_us,
            query,
        } => {
            shared.submits.fetch_add(1, Ordering::Relaxed);
            // Admission gate 1: drain refuses all new work.
            if shared.draining.load(Ordering::SeqCst) {
                shared.shed_draining.fetch_add(1, Ordering::Relaxed);
                conn.push_frame(&Frame::Shed {
                    id,
                    reason: ShedReason::Draining,
                    retry_after_us: 0,
                });
                return;
            }
            // Gate 2: the per-connection in-flight cap. Checked before
            // quota so an over-pipelined connection is not also charged
            // tokens for work the server will refuse anyway.
            if conn.inflight >= shared.max_inflight_per_conn {
                shared.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                conn.push_frame(&Frame::Shed {
                    id,
                    reason: ShedReason::QueueFull,
                    retry_after_us: 0,
                });
                return;
            }
            // Gate 3: the tenant's token bucket.
            if let Some(q) = &shared.quotas {
                if let Err(retry_after_us) = q.try_admit(tenant, shared.now_ns()) {
                    shared.shed_quota.fetch_add(1, Ordering::Relaxed);
                    conn.push_frame(&Frame::Shed {
                        id,
                        reason: ShedReason::QuotaExceeded,
                        retry_after_us,
                    });
                    return;
                }
            }
            // Gate 4: the shard queue's capacity backpressure.
            let arrival = shared.now();
            let mut st = shard.state.lock().unwrap();
            let payload = st.insert(PendingQuery {
                conn: key,
                id,
                query,
            });
            let q = Query {
                id: shared.next_query_id.fetch_add(1, Ordering::Relaxed),
                priority,
                arrival,
                deadline: (deadline_us > 0)
                    .then(|| arrival.saturating_add(SimTime::from_nanos(deadline_us * 1_000))),
                payload,
            };
            match st.queue.offer(q) {
                Ok(()) => {
                    drop(st);
                    shared.accepted.fetch_add(1, Ordering::Relaxed);
                    conn.inflight += 1;
                    shard.cv.notify_one();
                }
                Err(_) => {
                    st.remove(payload);
                    drop(st);
                    shared.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                    conn.push_frame(&Frame::Shed {
                        id,
                        reason: ShedReason::QueueFull,
                        retry_after_us: 0,
                    });
                }
            }
        }
        Frame::Cancel { id } => {
            // Best-effort: if (conn, id) is still pending, flag it; the
            // exec thread answers with Shed(Cancelled) when it dequeues
            // it, keeping the one-answer-per-submit invariant.
            let mut st = shard.state.lock().unwrap();
            let queued = st
                .slab
                .iter()
                .flatten()
                .any(|p| p.conn == key && p.id == id);
            if queued && !st.cancelled.contains(&(key, id)) {
                st.cancelled.push((key, id));
                drop(st);
                shard.cv.notify_one();
            }
        }
        Frame::Drain => {
            let queued: u64 = shared
                .shards
                .iter()
                .map(|s| s.state.lock().unwrap().in_flight())
                .sum();
            conn.push_frame(&Frame::DrainAck { queued });
            shared.draining.store(true, Ordering::SeqCst);
            shared.notify_all();
        }
        Frame::Stats => {
            conn.push_frame(&Frame::StatsReply(shared.snapshot()));
        }
        // Server-to-client frames arriving at the server are a protocol
        // violation; drop the connection.
        Frame::Result { .. }
        | Frame::Shed { .. }
        | Frame::DrainAck { .. }
        | Frame::StatsReply(_) => {
            conn.closed = true;
        }
    }
}

/// A batch entry: the admitted query paired with its reply-routing slot.
type BatchEntry = (Query, PendingQuery);

/// Shard exec loop: form scan-sharing batches, run them, route responses.
fn exec_thread(
    shared: Arc<Shared>,
    shard_ix: usize,
    runner: Arc<dyn BatchRunner>,
    max_batch: usize,
) {
    let shard = &shared.shards[shard_ix];
    loop {
        // Wait for work (or drain).
        let (expired, work): (Vec<PendingQuery>, Vec<BatchEntry>) = {
            let mut st = shard.state.lock().unwrap();
            let (batch, expired_q) = loop {
                let now = shared.now();
                let (batch, expired_q) = st.queue.take_batch_with_expired(max_batch, now);
                if !batch.is_empty() || !expired_q.is_empty() {
                    break (batch, expired_q);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    shard.exec_done.store(true, Ordering::SeqCst);
                    let _ = shard.poller.notify();
                    return;
                }
                let (guard, _) = shard
                    .cv
                    .wait_timeout(st, Duration::from_millis(50))
                    .unwrap();
                st = guard;
            };
            let expired: Vec<PendingQuery> =
                expired_q.iter().map(|q| st.remove(q.payload)).collect();
            let mut work = Vec::with_capacity(batch.len());
            for q in batch {
                let p = st.remove(q.payload);
                if let Some(pos) = st.cancelled.iter().position(|c| *c == (p.conn, p.id)) {
                    st.cancelled.swap_remove(pos);
                    shared.cancelled.fetch_add(1, Ordering::Relaxed);
                    let frame = Frame::Shed {
                        id: p.id,
                        reason: ShedReason::Cancelled,
                        retry_after_us: 0,
                    };
                    let _ = shard.results_tx.send((p.conn, encode_frame(&frame)));
                } else {
                    work.push((q, p));
                }
            }
            (expired, work)
        };
        for p in expired {
            shared.expired.fetch_add(1, Ordering::Relaxed);
            let frame = Frame::Shed {
                id: p.id,
                reason: ShedReason::Expired,
                retry_after_us: 0,
            };
            let _ = shard.results_tx.send((p.conn, encode_frame(&frame)));
        }
        // Deadline enforcement a second time, at the execution boundary:
        // the dequeue check used the batch-formation clock, but lock
        // hand-off and cancel resolution consume real time — a query
        // whose propagated deadline lapsed in between must not burn a
        // scan pass on an answer its client has already written off.
        let now = shared.now();
        let (late, work): (Vec<BatchEntry>, Vec<BatchEntry>) = work
            .into_iter()
            .partition(|(q, _)| q.deadline.is_some_and(|d| d < now));
        for (_, p) in late {
            shared.expired.fetch_add(1, Ordering::Relaxed);
            let frame = Frame::Shed {
                id: p.id,
                reason: ShedReason::Expired,
                retry_after_us: 0,
            };
            let _ = shard.results_tx.send((p.conn, encode_frame(&frame)));
        }
        if work.is_empty() {
            let _ = shard.poller.notify();
            continue;
        }

        let start = shared.now();
        let queries: Vec<Vec<u8>> = work.iter().map(|(_, p)| p.query.clone()).collect();
        match runner.run_batch(&queries) {
            Ok(out) => {
                let done = shared.now();
                for ((_, p), payload) in work.iter().zip(out.per_query) {
                    shard.served.fetch_add(1, Ordering::Relaxed);
                    let frame = Frame::Result {
                        id: p.id,
                        status: ResultStatus::Ok,
                        payload,
                    };
                    let _ = shard.results_tx.send((p.conn, encode_frame(&frame)));
                }
                let batch_q: Vec<Query> = work.iter().map(|(q, _)| *q).collect();
                let res = BatchResult {
                    service: done.saturating_sub(start),
                    scan_s: out.scan_s,
                    search_s: out.search_s,
                    bytes_read: out.bytes_read,
                    kernel_passes: out.kernel_passes,
                    passes_saved: out.passes_saved,
                };
                shard
                    .state
                    .lock()
                    .unwrap()
                    .metrics
                    .record_batch(&batch_q, start, done, &res);
            }
            Err(e) => {
                // Zero result loss even on failure: every query in the
                // batch gets a typed error Result.
                let (status, msg) = match &e {
                    RunnerError::Corrupt => (ResultStatus::Corrupt, e.to_string()),
                    RunnerError::Other(m) => (ResultStatus::Failed, m.clone()),
                };
                for (_, p) in &work {
                    shard.served.fetch_add(1, Ordering::Relaxed);
                    let frame = Frame::Result {
                        id: p.id,
                        status,
                        payload: msg.clone().into_bytes(),
                    };
                    let _ = shard.results_tx.send((p.conn, encode_frame(&frame)));
                }
            }
        }
        let _ = shard.poller.notify();
    }
}
