//! The blocking client library.
//!
//! [`NetClient`] speaks the [`crate::proto`] frame protocol over one
//! *pooled* TCP connection and layers the full resilience stack on top:
//!
//! * **Pooled retries** — a retry reuses the existing connection when it
//!   is healthy (a server-side `Failed` does not invalidate the socket);
//!   only transport failures drop it and force a re-dial.
//! * **Retry budget** ([`RetryBudget`]) — retries spend tokens deposited
//!   by successes, so a shedding or flapping server sees at most the
//!   original offered load plus a bounded fraction, never a retry storm.
//! * **Circuit breaker** ([`CircuitBreaker`]) — consecutive transport
//!   failures trip it; while open, calls fail fast with
//!   [`ClientError::CircuitOpen`] instead of dialing a corpse; after a
//!   cooldown a single half-open probe decides whether to close it.
//! * **Deadline propagation** — `config.deadline_us` is an end-to-end
//!   budget: every attempt (and every hedge) stamps its `Submit` with the
//!   budget *remaining now*, so the server's dequeue- and pre-execution
//!   deadline checks act on truth rather than the original allowance.
//! * **Hedged Submits** ([`HedgeConfig`]) — once armed, a second Submit
//!   races the primary after an adaptive p95 delay; the first definitive
//!   answer wins and the loser is cancelled via the `Cancel` frame.
//!
//! The deterministic/transient split is unchanged from PR 1: `Shed` and
//! `Corrupt` are answers, not losses — they short-circuit; timeouts,
//! resets, EOFs, and server-side `Failed` are transient and eligible for
//! the retry budget.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parblast_pvfs::{backoff_delay, RetryPolicy};
use parblast_serve::Priority;

use crate::proto::{encode_frame, Frame, FrameError, ResultStatus, ShedReason, StatsSnapshot};
use crate::resilience::{
    BreakerConfig, BreakerState, BudgetConfig, CircuitBreaker, HedgeConfig, LatencyTracker,
    RetryBudget,
};

/// What a [`Dialer`] must hand back: a blocking byte stream with a
/// settable read timeout. `TcpStream` is the production impl;
/// `chaos::FaultyStream` the adversarial one.
pub trait ClientStream: Read + Write + Send {
    /// Set (or clear) the blocking-read timeout.
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
    /// Hard-close both directions.
    fn shutdown(&self) -> io::Result<()>;
}

impl ClientStream for TcpStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }

    fn shutdown(&self) -> io::Result<()> {
        TcpStream::shutdown(self, std::net::Shutdown::Both)
    }
}

/// Connection factory, so chaos tests can interpose
/// [`crate::chaos::FaultyStream`] without the client knowing.
pub trait Dialer: Send + Sync {
    /// Open a new connection to `addr`.
    fn dial(&self, addr: &str) -> io::Result<Box<dyn ClientStream>>;
}

/// The production dialer: plain `TcpStream` with Nagle disabled.
#[derive(Debug, Default)]
pub struct TcpDialer;

impl Dialer for TcpDialer {
    fn dial(&self, addr: &str) -> io::Result<Box<dyn ClientStream>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Box::new(stream))
    }
}

/// Per-connection client knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Tenant id stamped on every `Submit` (quota accounting key).
    pub tenant: u32,
    /// Scheduling class stamped on every `Submit`.
    pub priority: Priority,
    /// End-to-end deadline budget in microseconds (0 = no deadline).
    /// Each attempt propagates the budget *remaining* at send time.
    pub deadline_us: u64,
    /// Timeout/retry/backoff policy for [`NetClient::query`].
    pub retry: RetryPolicy,
    /// Retry-budget knobs (defaults keep a 10-token bucket refilled 0.1
    /// per success).
    pub budget: BudgetConfig,
    /// Circuit-breaker knobs (defaults trip after 8 consecutive
    /// transport failures, 500 ms cooldown).
    pub breaker: BreakerConfig,
    /// Hedged-Submit knobs (disabled by default).
    pub hedge: HedgeConfig,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            tenant: 0,
            priority: Priority::Normal,
            deadline_us: 0,
            retry: RetryPolicy::default(),
            budget: BudgetConfig::default(),
            breaker: BreakerConfig::default(),
            hedge: HedgeConfig::default(),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The server refused the query with a typed reason. **Not retried**
    /// by [`NetClient::query`]: the server said no on purpose, and the
    /// `retry_after_us` hint belongs to the caller's pacing decision.
    Shed {
        /// The server's refusal reason.
        reason: ShedReason,
        /// Microseconds the server suggests waiting before retrying
        /// (0 = no hint).
        retry_after_us: u64,
    },
    /// The server executed the query and hit unrecoverable data
    /// corruption. **Not retried** — deterministic, like
    /// `pvfs::msg::IoError::Corrupt`.
    Corrupt(String),
    /// The server failed to execute the batch (retried up to the policy
    /// budget, then surfaced).
    Failed(String),
    /// Transport-level failure after the retry budget was spent.
    Io(io::Error),
    /// The server sent bytes that do not decode as a valid frame.
    Protocol(FrameError),
    /// The end-to-end deadline budget ran out client-side. Not retried:
    /// there is no time left to spend.
    DeadlineExceeded,
    /// The circuit breaker is open: recent consecutive transport
    /// failures make the server presumptively dead, so the call failed
    /// fast without touching the network.
    CircuitOpen,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Shed {
                reason,
                retry_after_us,
            } => write!(
                f,
                "shed by server: {reason:?} (retry after {retry_after_us} us)"
            ),
            ClientError::Corrupt(msg) => write!(f, "corrupt result: {msg}"),
            ClientError::Failed(msg) => write!(f, "server-side failure: {msg}"),
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ClientError::DeadlineExceeded => write!(f, "end-to-end deadline exceeded"),
            ClientError::CircuitOpen => write!(f, "circuit breaker open"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One response to a pipelined submit, matched to its query by `id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The rendered result payload.
    Ok(Vec<u8>),
    /// Executed, but the store is corrupt.
    Corrupt(Vec<u8>),
    /// Executed, but the runner failed.
    Failed(Vec<u8>),
    /// Refused with a typed reason and a retry hint.
    Shed(ShedReason, u64),
}

/// Observability counters for one client's resilience machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Connections dialed (1 = the pool worked perfectly).
    pub dials: u64,
    /// Retries actually sent (budget-approved).
    pub retries: u64,
    /// Retries refused by an exhausted budget.
    pub budget_exhausted: u64,
    /// Calls refused by an open breaker.
    pub breaker_fast_fails: u64,
    /// Hedge Submits sent.
    pub hedges_sent: u64,
    /// Queries won by the hedge rather than the primary.
    pub hedge_wins: u64,
}

struct Conn {
    stream: Box<dyn ClientStream>,
    reader: crate::proto::FrameReader,
}

enum RecvOut {
    Frame(Frame),
    Eof,
    TimedOut,
}

/// A blocking client over one pooled connection to the daemon.
pub struct NetClient {
    addr: String,
    dialer: Arc<dyn Dialer>,
    conn: Option<Conn>,
    config: ClientConfig,
    next_id: u64,
    budget: RetryBudget,
    breaker: CircuitBreaker,
    latency: LatencyTracker,
    epoch: Instant,
    counters: ClientCounters,
}

impl NetClient {
    /// Connect with the default [`ClientConfig`].
    pub fn connect(addr: &str) -> io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit knobs.
    pub fn connect_with(addr: &str, config: ClientConfig) -> io::Result<Self> {
        Self::connect_with_dialer(addr, config, Arc::new(TcpDialer))
    }

    /// Connect through a custom [`Dialer`] (chaos tests inject
    /// [`crate::chaos::ChaosDialer`] here).
    pub fn connect_with_dialer(
        addr: &str,
        config: ClientConfig,
        dialer: Arc<dyn Dialer>,
    ) -> io::Result<Self> {
        let mut client = NetClient {
            addr: addr.to_string(),
            dialer,
            conn: None,
            config,
            next_id: 1,
            budget: RetryBudget::new(config.budget),
            breaker: CircuitBreaker::new(config.breaker),
            latency: LatencyTracker::new(),
            epoch: Instant::now(),
            counters: ClientCounters::default(),
        };
        client.ensure_conn()?;
        Ok(client)
    }

    /// The configured knobs.
    pub fn config(&self) -> ClientConfig {
        self.config
    }

    /// Resilience counters.
    pub fn counters(&self) -> ClientCounters {
        self.counters
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Retry tokens currently available.
    pub fn budget_tokens(&self) -> f64 {
        self.budget.tokens()
    }

    /// Observed p95 attempt latency in µs (feeds the hedge delay).
    pub fn latency_p95_us(&self) -> u64 {
        self.latency.p95_us()
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn ensure_conn(&mut self) -> io::Result<()> {
        if self.conn.is_none() {
            let stream = self.dialer.dial(&self.addr)?;
            self.counters.dials += 1;
            self.conn = Some(Conn {
                stream,
                reader: crate::proto::FrameReader::new(),
            });
        }
        Ok(())
    }

    fn drop_conn(&mut self) {
        if let Some(conn) = self.conn.take() {
            let _ = conn.stream.shutdown();
        }
    }

    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.ensure_conn()?;
        let bytes = encode_frame(frame);
        let conn = self.conn.as_mut().expect("ensured above");
        match conn
            .stream
            .write_all(&bytes)
            .and_then(|_| conn.stream.flush())
        {
            Ok(()) => Ok(()),
            Err(e) => {
                self.drop_conn();
                Err(e)
            }
        }
    }

    /// Read until a frame decodes, the connection ends, or `until`
    /// passes. `until = None` blocks indefinitely.
    fn recv_frame_until(&mut self, until: Option<Instant>) -> Result<RecvOut, ClientError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let conn = self.conn.as_mut().ok_or_else(|| {
                ClientError::Io(io::Error::new(io::ErrorKind::NotConnected, "not connected"))
            })?;
            match conn.reader.next_frame() {
                Ok(Some(f)) => return Ok(RecvOut::Frame(f)),
                Ok(None) => {}
                Err(e) => return Err(ClientError::Protocol(e)),
            }
            match until {
                None => conn.stream.set_read_timeout(None)?,
                Some(u) => {
                    let rem = u.saturating_duration_since(Instant::now());
                    if rem.is_zero() {
                        return Ok(RecvOut::TimedOut);
                    }
                    conn.stream.set_read_timeout(Some(rem))?;
                }
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => return Ok(RecvOut::Eof),
                Ok(n) => conn.reader.feed(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(RecvOut::TimedOut)
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Blocking read of the next frame from the server. `Ok(None)` means
    /// the server closed the connection cleanly (drain complete).
    fn recv_frame(&mut self) -> Result<Option<Frame>, ClientError> {
        match self.recv_frame_until(None)? {
            RecvOut::Frame(f) => Ok(Some(f)),
            RecvOut::Eof => Ok(None),
            RecvOut::TimedOut => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "unexpected timeout on an untimed read",
            ))),
        }
    }

    /// Pipelined submit: send one `Submit` frame, return its query id
    /// without waiting. Pair with [`Self::recv_response`].
    pub fn submit(&mut self, query: &[u8]) -> io::Result<u64> {
        let deadline_us = self.config.deadline_us;
        self.submit_with_deadline(query, deadline_us)
    }

    fn submit_with_deadline(&mut self, query: &[u8], deadline_us: u64) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Frame::Submit {
            id,
            tenant: self.config.tenant,
            priority: self.config.priority,
            deadline_us,
            query: query.to_vec(),
        })?;
        Ok(id)
    }

    /// Blocking read of the next `Result`/`Shed` for any outstanding
    /// submit. `Ok(None)` = server closed the connection (drained).
    pub fn recv_response(&mut self) -> Result<Option<(u64, Response)>, ClientError> {
        loop {
            match self.recv_frame()? {
                None => return Ok(None),
                Some(Frame::Result {
                    id,
                    status,
                    payload,
                }) => {
                    let resp = match status {
                        ResultStatus::Ok => Response::Ok(payload),
                        ResultStatus::Corrupt => Response::Corrupt(payload),
                        ResultStatus::Failed => Response::Failed(payload),
                    };
                    return Ok(Some((id, resp)));
                }
                Some(Frame::Shed {
                    id,
                    reason,
                    retry_after_us,
                }) => return Ok(Some((id, Response::Shed(reason, retry_after_us)))),
                // Out-of-band admin replies are skipped here.
                Some(_) => continue,
            }
        }
    }

    /// Best-effort cancel of a previously submitted query id.
    pub fn cancel(&mut self, id: u64) -> io::Result<()> {
        self.send(&Frame::Cancel { id })
    }

    /// Ask the daemon for its counter snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.send(&Frame::Stats)?;
        loop {
            match self.recv_frame()? {
                None => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before StatsReply",
                    )))
                }
                Some(Frame::StatsReply(s)) => return Ok(s),
                Some(_) => continue,
            }
        }
    }

    /// Start a graceful drain; returns the queued+in-flight count the
    /// server acknowledged. After this, the server finishes outstanding
    /// work, flushes results, and closes every connection.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        self.send(&Frame::Drain)?;
        loop {
            match self.recv_frame()? {
                None => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before DrainAck",
                    )))
                }
                Some(Frame::DrainAck { queued }) => return Ok(queued),
                Some(_) => continue,
            }
        }
    }

    /// One blocking query under the full resilience stack: submit, wait
    /// for the matching response (hedging a second Submit if armed), and
    /// on a *transient* failure retry after `backoff_delay(attempt)` —
    /// if the retry budget has a token, the breaker is closed, and the
    /// end-to-end deadline has room. The pooled connection is reused
    /// across attempts whenever it is still healthy; only transport
    /// failures force a re-dial. `Shed` and `Corrupt` short-circuit:
    /// they are deterministic answers, not losses.
    pub fn query(&mut self, query: &[u8]) -> Result<Vec<u8>, ClientError> {
        let policy = self.config.retry;
        let overall: Option<Instant> = if self.config.deadline_us > 0 {
            Some(Instant::now() + Duration::from_micros(self.config.deadline_us))
        } else {
            None
        };
        let attempts = 1 + if policy.enabled() {
            policy.max_retries
        } else {
            0
        };
        let mut last_err: Option<ClientError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                if !self.budget.try_spend() {
                    // Budget empty: surfacing the last error beats
                    // multiplying load on a struggling server.
                    self.counters.budget_exhausted += 1;
                    break;
                }
                self.counters.retries += 1;
                let delay = backoff_delay(attempt - 1, policy.base_backoff, policy.max_backoff);
                let mut delay = Duration::from_nanos(delay.as_nanos());
                if let Some(o) = overall {
                    delay = delay.min(o.saturating_duration_since(Instant::now()));
                }
                std::thread::sleep(delay);
            }
            if let Some(o) = overall {
                if Instant::now() >= o {
                    return Err(ClientError::DeadlineExceeded);
                }
            }
            let t0 = Instant::now();
            match self.query_attempt(query, overall) {
                Ok(payload) => {
                    self.budget.deposit();
                    self.latency.record_us(t0.elapsed().as_micros() as u64);
                    return Ok(payload);
                }
                // Deterministic outcomes: retrying cannot help. An open
                // breaker fails fast by design, and a spent deadline has
                // no time left to retry in.
                Err(
                    e @ (ClientError::Shed { .. }
                    | ClientError::Corrupt(_)
                    | ClientError::DeadlineExceeded
                    | ClientError::CircuitOpen),
                ) => return Err(e),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            ClientError::Io(io::Error::other("retry budget spent with no attempt made"))
        }))
    }

    /// One attempt, bracketed by the breaker.
    fn query_attempt(
        &mut self,
        query: &[u8],
        overall: Option<Instant>,
    ) -> Result<Vec<u8>, ClientError> {
        if !self.breaker.allow(self.now_ns()) {
            self.counters.breaker_fast_fails += 1;
            return Err(ClientError::CircuitOpen);
        }
        let r = self.attempt_inner(query, overall);
        match &r {
            // Any typed answer — even a refusal — proves the server is
            // alive and routing frames.
            Ok(_)
            | Err(ClientError::Shed { .. })
            | Err(ClientError::Corrupt(_))
            | Err(ClientError::Failed(_)) => self.breaker.record_success(),
            Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {
                let now = self.now_ns();
                self.breaker.record_failure(now);
            }
            Err(ClientError::DeadlineExceeded) | Err(ClientError::CircuitOpen) => {}
        }
        r
    }

    /// Microseconds of end-to-end budget left (0 = "no deadline" when
    /// none was configured; error when a configured budget ran out).
    fn remaining_us(&self, overall: Option<Instant>) -> Result<u64, ClientError> {
        match overall {
            None => Ok(0),
            Some(o) => {
                let rem = o.saturating_duration_since(Instant::now());
                if rem.is_zero() {
                    Err(ClientError::DeadlineExceeded)
                } else {
                    Ok((rem.as_micros() as u64).max(1))
                }
            }
        }
    }

    fn attempt_inner(
        &mut self,
        query: &[u8],
        overall: Option<Instant>,
    ) -> Result<Vec<u8>, ClientError> {
        let policy = self.config.retry;
        // The attempt ends at the per-attempt timeout or the end-to-end
        // deadline, whichever comes first.
        let mut until: Option<Instant> = if policy.enabled() {
            Some(Instant::now() + Duration::from_nanos(policy.timeout.as_nanos()))
        } else {
            None
        };
        if let Some(o) = overall {
            until = Some(until.map_or(o, |u| u.min(o)));
        }
        let deadline_us = self.remaining_us(overall)?;
        let primary = self
            .submit_with_deadline(query, deadline_us)
            .map_err(ClientError::Io)?;
        let mut outstanding = vec![primary];
        let mut hedge_at: Option<Instant> = self
            .latency
            .hedge_delay_us(&self.config.hedge)
            .map(|us| Instant::now() + Duration::from_micros(us));

        loop {
            let wake = match (until, hedge_at) {
                (Some(u), Some(h)) => Some(u.min(h)),
                (Some(u), None) => Some(u),
                (None, h) => h,
            };
            match self.recv_frame_until(wake) {
                Err(e) => {
                    self.drop_conn();
                    return Err(e);
                }
                Ok(RecvOut::Eof) => {
                    self.drop_conn();
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before result",
                    )));
                }
                Ok(RecvOut::TimedOut) => {
                    let now = Instant::now();
                    if let Some(h) = hedge_at {
                        if now >= h {
                            // The primary is past its p95: race a hedge
                            // with the budget remaining *now*.
                            hedge_at = None;
                            let rem = self.remaining_us(overall)?;
                            match self.submit_with_deadline(query, rem) {
                                Ok(id) => {
                                    self.counters.hedges_sent += 1;
                                    outstanding.push(id);
                                }
                                Err(e) => return Err(ClientError::Io(e)),
                            }
                            continue;
                        }
                    }
                    if until.is_some_and(|u| now >= u) {
                        // Attempt over: release the server's slots before
                        // giving up on this attempt.
                        for id in outstanding {
                            let _ = self.cancel(id);
                        }
                        if overall.is_some_and(|o| now >= o) {
                            return Err(ClientError::DeadlineExceeded);
                        }
                        return Err(ClientError::Io(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "attempt timed out",
                        )));
                    }
                    continue;
                }
                Ok(RecvOut::Frame(Frame::Result {
                    id,
                    status,
                    payload,
                })) if outstanding.contains(&id) => match status {
                    ResultStatus::Ok => {
                        if id != primary {
                            self.counters.hedge_wins += 1;
                        }
                        for other in outstanding.into_iter().filter(|x| *x != id) {
                            let _ = self.cancel(other);
                        }
                        return Ok(payload);
                    }
                    ResultStatus::Corrupt => {
                        for other in outstanding.into_iter().filter(|x| *x != id) {
                            let _ = self.cancel(other);
                        }
                        return Err(ClientError::Corrupt(
                            String::from_utf8_lossy(&payload).into_owned(),
                        ));
                    }
                    ResultStatus::Failed => {
                        outstanding.retain(|x| *x != id);
                        if outstanding.is_empty() {
                            return Err(ClientError::Failed(
                                String::from_utf8_lossy(&payload).into_owned(),
                            ));
                        }
                    }
                },
                Ok(RecvOut::Frame(Frame::Shed {
                    id,
                    reason,
                    retry_after_us,
                })) if outstanding.contains(&id) => {
                    outstanding.retain(|x| *x != id);
                    if outstanding.is_empty() {
                        return Err(ClientError::Shed {
                            reason,
                            retry_after_us,
                        });
                    }
                }
                // Stale responses (cancelled losers, timed-out earlier
                // attempts) and out-of-band admin replies.
                Ok(RecvOut::Frame(_)) => continue,
            }
        }
    }
}
