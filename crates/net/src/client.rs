//! The blocking client library.
//!
//! [`NetClient`] speaks the [`crate::proto`] frame protocol over one TCP
//! connection and layers the PR 1 fault policy on top: a per-attempt
//! timeout from [`parblast_pvfs::RetryPolicy`], bounded exponential
//! backoff via [`parblast_pvfs::backoff_delay`] between attempts, and a
//! hard split between transient failures (timeouts, connection drops,
//! `Failed` results — retried, with a fresh connection per attempt) and
//! deterministic ones (`Shed` refusals and `Corrupt` results — surfaced
//! immediately; re-sending cannot change the answer, exactly as
//! `pvfs::retry` treats checksum mismatches).
//!
//! Two call styles:
//! * [`NetClient::query`] — one query, blocking, full retry policy; what
//!   `pb-blastall --connect` uses.
//! * [`NetClient::submit`] + [`NetClient::recv_response`] — pipelined
//!   submits with out-of-band completion matching by query id; what the
//!   open-loop bench clients use (no retry: the bench wants to *see*
//!   sheds, not paper over them).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use parblast_pvfs::{backoff_delay, RetryPolicy};
use parblast_serve::Priority;

use crate::proto::{encode_frame, Frame, FrameError, ResultStatus, ShedReason, StatsSnapshot};

/// Per-connection client knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Tenant id stamped on every `Submit` (quota accounting key).
    pub tenant: u32,
    /// Scheduling class stamped on every `Submit`.
    pub priority: Priority,
    /// Relative deadline in microseconds (0 = no deadline).
    pub deadline_us: u64,
    /// Timeout/retry/backoff policy for [`NetClient::query`].
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            tenant: 0,
            priority: Priority::Normal,
            deadline_us: 0,
            retry: RetryPolicy::default(),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The server refused the query with a typed reason. **Not retried**
    /// by [`NetClient::query`]: the server said no on purpose, and the
    /// `retry_after_us` hint belongs to the caller's pacing decision.
    Shed {
        /// The server's refusal reason.
        reason: ShedReason,
        /// Microseconds the server suggests waiting before retrying
        /// (0 = no hint).
        retry_after_us: u64,
    },
    /// The server executed the query and hit unrecoverable data
    /// corruption. **Not retried** — deterministic, like
    /// `pvfs::msg::IoError::Corrupt`.
    Corrupt(String),
    /// The server failed to execute the batch (retried up to the policy
    /// budget, then surfaced).
    Failed(String),
    /// Transport-level failure after the retry budget was spent.
    Io(io::Error),
    /// The server sent bytes that do not decode as a valid frame.
    Protocol(FrameError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Shed {
                reason,
                retry_after_us,
            } => write!(
                f,
                "shed by server: {reason:?} (retry after {retry_after_us} us)"
            ),
            ClientError::Corrupt(msg) => write!(f, "corrupt result: {msg}"),
            ClientError::Failed(msg) => write!(f, "server-side failure: {msg}"),
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One response to a pipelined submit, matched to its query by `id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The rendered result payload.
    Ok(Vec<u8>),
    /// Executed, but the store is corrupt.
    Corrupt(Vec<u8>),
    /// Executed, but the runner failed.
    Failed(Vec<u8>),
    /// Refused with a typed reason and a retry hint.
    Shed(ShedReason, u64),
}

/// A blocking client over one TCP connection to the daemon.
pub struct NetClient {
    addr: String,
    stream: TcpStream,
    reader: crate::proto::FrameReader,
    config: ClientConfig,
    next_id: u64,
}

impl NetClient {
    /// Connect with the default [`ClientConfig`].
    pub fn connect(addr: &str) -> io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit knobs.
    pub fn connect_with(addr: &str, config: ClientConfig) -> io::Result<Self> {
        let stream = Self::dial(addr, &config)?;
        Ok(NetClient {
            addr: addr.to_string(),
            stream,
            reader: crate::proto::FrameReader::new(),
            config,
            next_id: 1,
        })
    }

    fn dial(addr: &str, config: &ClientConfig) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        if config.retry.enabled() {
            let t = Duration::from_nanos(config.retry.timeout.as_nanos());
            stream.set_read_timeout(Some(t))?;
        }
        Ok(stream)
    }

    /// The configured knobs.
    pub fn config(&self) -> ClientConfig {
        self.config
    }

    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.stream.write_all(&encode_frame(frame))
    }

    /// Blocking read of the next frame from the server. `Ok(None)` means
    /// the server closed the connection cleanly (drain complete).
    fn recv_frame(&mut self) -> Result<Option<Frame>, ClientError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.reader.next_frame() {
                Ok(Some(f)) => return Ok(Some(f)),
                Ok(None) => {}
                Err(e) => return Err(ClientError::Protocol(e)),
            }
            match self.stream.read(&mut buf) {
                Ok(0) => return Ok(None),
                Ok(n) => self.reader.feed(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Pipelined submit: send one `Submit` frame, return its query id
    /// without waiting. Pair with [`Self::recv_response`].
    pub fn submit(&mut self, query: &[u8]) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Frame::Submit {
            id,
            tenant: self.config.tenant,
            priority: self.config.priority,
            deadline_us: self.config.deadline_us,
            query: query.to_vec(),
        })?;
        Ok(id)
    }

    /// Blocking read of the next `Result`/`Shed` for any outstanding
    /// submit. `Ok(None)` = server closed the connection (drained).
    pub fn recv_response(&mut self) -> Result<Option<(u64, Response)>, ClientError> {
        loop {
            match self.recv_frame()? {
                None => return Ok(None),
                Some(Frame::Result {
                    id,
                    status,
                    payload,
                }) => {
                    let resp = match status {
                        ResultStatus::Ok => Response::Ok(payload),
                        ResultStatus::Corrupt => Response::Corrupt(payload),
                        ResultStatus::Failed => Response::Failed(payload),
                    };
                    return Ok(Some((id, resp)));
                }
                Some(Frame::Shed {
                    id,
                    reason,
                    retry_after_us,
                }) => return Ok(Some((id, Response::Shed(reason, retry_after_us)))),
                // Out-of-band admin replies are skipped here.
                Some(_) => continue,
            }
        }
    }

    /// Best-effort cancel of a previously submitted query id.
    pub fn cancel(&mut self, id: u64) -> io::Result<()> {
        self.send(&Frame::Cancel { id })
    }

    /// Ask the daemon for its counter snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.send(&Frame::Stats)?;
        loop {
            match self.recv_frame()? {
                None => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before StatsReply",
                    )))
                }
                Some(Frame::StatsReply(s)) => return Ok(s),
                Some(_) => continue,
            }
        }
    }

    /// Start a graceful drain; returns the queued+in-flight count the
    /// server acknowledged. After this, the server finishes outstanding
    /// work, flushes results, and closes every connection.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        self.send(&Frame::Drain)?;
        loop {
            match self.recv_frame()? {
                None => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before DrainAck",
                    )))
                }
                Some(Frame::DrainAck { queued }) => return Ok(queued),
                Some(_) => continue,
            }
        }
    }

    /// One blocking query with the full retry policy: submit, wait for
    /// the matching response, and on a *transient* failure (transport
    /// error, per-attempt timeout, server-side `Failed`) reconnect and
    /// re-send after `backoff_delay(attempt)` — up to
    /// `retry.max_retries` retries. `Shed` and `Corrupt` short-circuit:
    /// they are deterministic answers, not losses.
    pub fn query(&mut self, query: &[u8]) -> Result<Vec<u8>, ClientError> {
        let policy = self.config.retry;
        let mut last_err: Option<ClientError> = None;
        let attempts = 1 + if policy.enabled() {
            policy.max_retries
        } else {
            0
        };
        for attempt in 0..attempts {
            if attempt > 0 {
                let delay = backoff_delay(attempt - 1, policy.base_backoff, policy.max_backoff);
                std::thread::sleep(Duration::from_nanos(delay.as_nanos()));
                // A fresh connection: the old one may hold a half-read
                // frame or be dead.
                match Self::dial(&self.addr, &self.config) {
                    Ok(s) => {
                        self.stream = s;
                        self.reader = crate::proto::FrameReader::new();
                    }
                    Err(e) => {
                        last_err = Some(ClientError::Io(e));
                        continue;
                    }
                }
            }
            match self.query_once(query) {
                Ok(payload) => return Ok(payload),
                // Deterministic outcomes: retrying cannot help.
                Err(e @ (ClientError::Shed { .. } | ClientError::Corrupt(_))) => return Err(e),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            ClientError::Io(io::Error::other("retry budget spent with no attempt made"))
        }))
    }

    fn query_once(&mut self, query: &[u8]) -> Result<Vec<u8>, ClientError> {
        let id = self.submit(query)?;
        loop {
            match self.recv_response()? {
                None => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before result",
                    )))
                }
                Some((got, resp)) if got == id => {
                    return match resp {
                        Response::Ok(payload) => Ok(payload),
                        Response::Corrupt(msg) => Err(ClientError::Corrupt(
                            String::from_utf8_lossy(&msg).into_owned(),
                        )),
                        Response::Failed(msg) => Err(ClientError::Failed(
                            String::from_utf8_lossy(&msg).into_owned(),
                        )),
                        Response::Shed(reason, retry_after_us) => Err(ClientError::Shed {
                            reason,
                            retry_after_us,
                        }),
                    }
                }
                // A response for a different (older, pipelined) id.
                Some(_) => continue,
            }
        }
    }
}
