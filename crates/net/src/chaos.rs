//! Socket fault injection: deterministic chaos for the serving tier.
//!
//! [`FaultyStream`] wraps any byte stream and replays a
//! [`SocketFaultSchedule`] (the PR 1 `FaultSchedule` idiom moved from
//! simulated time to byte offsets): short reads/writes cap a transfer,
//! stalls sleep before one, and a reset hard-closes the transport so the
//! peer sees a mid-frame connection death. Faults key on *cursor
//! positions* — bytes moved so far in each direction — so a schedule is a
//! pure function of the data exchanged, independent of timing, and two
//! runs with the same seed inject byte-identical failures.
//!
//! A transfer is additionally capped so it never crosses the next
//! scheduled fault offset: a reset planned at byte 7 fires after exactly
//! 7 bytes moved, even if the caller offered 64 KiB. That is what makes
//! the kill-at-every-byte sweep in `tests/net.rs` exhaustive.
//!
//! [`ChaosDialer`] plugs this into [`crate::NetClient`]: connection `i`
//! of a client gets the schedule drawn from `(seed, i)`, so a multi-client
//! chaos run is fully determined by its seeds while every connection
//! still fails differently.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parblast_hwsim::{
    SocketChaosProfile, SocketDir, SocketFault, SocketFaultKind, SocketFaultSchedule,
};

use crate::client::{ClientStream, Dialer};

/// Transports that can simulate a peer reset (`TcpStream::shutdown`).
pub trait HardReset {
    /// Hard-close both halves; subsequent peer ops fail or see EOF.
    fn hard_reset(&mut self) -> io::Result<()>;
}

impl HardReset for TcpStream {
    fn hard_reset(&mut self) -> io::Result<()> {
        self.shutdown(Shutdown::Both)
    }
}

/// Counters of faults actually applied by a [`FaultyStream`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Transfers capped short.
    pub shorts: u64,
    /// Stalls slept.
    pub stalls: u64,
    /// Resets fired (0 or 1).
    pub resets: u64,
}

/// A byte stream that injects scheduled faults into both directions.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    read_faults: Vec<SocketFault>,
    write_faults: Vec<SocketFault>,
    rd_ix: usize,
    wr_ix: usize,
    read_pos: u64,
    write_pos: u64,
    reset: bool,
    counts: FaultCounts,
}

impl<S> FaultyStream<S> {
    /// Wrap `inner`, replaying `schedule` against it.
    pub fn new(inner: S, schedule: &SocketFaultSchedule) -> Self {
        FaultyStream {
            inner,
            read_faults: schedule.for_dir(SocketDir::Read),
            write_faults: schedule.for_dir(SocketDir::Write),
            rd_ix: 0,
            wr_ix: 0,
            read_pos: 0,
            write_pos: 0,
            reset: false,
            counts: FaultCounts::default(),
        }
    }

    /// Faults applied so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Bytes moved so far as `(read, written)`.
    pub fn positions(&self) -> (u64, u64) {
        (self.read_pos, self.write_pos)
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    fn reset_err() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
    }
}

impl<S: HardReset> FaultyStream<S> {
    /// Apply every fault due at `pos` in `faults[*ix..]`; returns the
    /// transfer cap for this op, or `None` if a reset fired.
    fn due_faults(
        inner: &mut S,
        faults: &[SocketFault],
        ix: &mut usize,
        pos: u64,
        mut cap: usize,
        counts: &mut FaultCounts,
        reset: &mut bool,
    ) -> Option<usize> {
        while let Some(f) = faults.get(*ix) {
            if f.at_byte > pos {
                // Never let one transfer sail past a scheduled fault:
                // stop exactly at its offset so it fires on the next op.
                cap = cap.min((f.at_byte - pos) as usize);
                break;
            }
            *ix += 1;
            match f.kind {
                SocketFaultKind::ShortOp { cap: c } => {
                    counts.shorts += 1;
                    cap = cap.min(c.max(1));
                }
                SocketFaultKind::Stall { for_ms } => {
                    counts.stalls += 1;
                    std::thread::sleep(Duration::from_millis(for_ms));
                }
                SocketFaultKind::Reset => {
                    counts.resets += 1;
                    *reset = true;
                    let _ = inner.hard_reset();
                    return None;
                }
            }
        }
        // A zero-byte read forges an EOF and a zero-byte write spins the
        // caller; a fault may shorten a transfer, never erase it.
        Some(cap.max(1))
    }
}

impl<S: Read + HardReset> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.reset {
            return Err(Self::reset_err());
        }
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        let cap = match Self::due_faults(
            &mut self.inner,
            &self.read_faults,
            &mut self.rd_ix,
            self.read_pos,
            buf.len(),
            &mut self.counts,
            &mut self.reset,
        ) {
            None => return Err(Self::reset_err()),
            Some(c) => c,
        };
        let n = self.inner.read(&mut buf[..cap])?;
        self.read_pos += n as u64;
        Ok(n)
    }
}

impl<S: Write + HardReset> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.reset {
            return Err(Self::reset_err());
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let cap = match Self::due_faults(
            &mut self.inner,
            &self.write_faults,
            &mut self.wr_ix,
            self.write_pos,
            buf.len(),
            &mut self.counts,
            &mut self.reset,
        ) {
            None => return Err(Self::reset_err()),
            Some(c) => c,
        };
        let n = self.inner.write(&buf[..cap])?;
        self.write_pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.reset {
            return Err(Self::reset_err());
        }
        self.inner.flush()
    }
}

impl ClientStream for FaultyStream<TcpStream> {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    fn shutdown(&self) -> io::Result<()> {
        self.inner.shutdown(Shutdown::Both)
    }
}

/// The seed for connection `index` under a dialer seeded with `seed`
/// (splitmix64 over the pair, so adjacent indices decorrelate).
pub fn connection_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`Dialer`] whose `i`-th connection carries the fault schedule drawn
/// from `(seed, i)` — deterministic chaos per connection.
#[derive(Debug)]
pub struct ChaosDialer {
    seed: u64,
    profile: SocketChaosProfile,
    dials: AtomicU64,
}

impl ChaosDialer {
    /// Dialer injecting faults drawn from `profile`, keyed by `seed`.
    pub fn new(seed: u64, profile: SocketChaosProfile) -> Self {
        ChaosDialer {
            seed,
            profile,
            dials: AtomicU64::new(0),
        }
    }

    /// Connections dialed so far.
    pub fn dials(&self) -> u64 {
        self.dials.load(Ordering::SeqCst)
    }

    /// The schedule connection `index` will carry.
    pub fn schedule_for(&self, index: u64) -> SocketFaultSchedule {
        SocketFaultSchedule::seeded(connection_seed(self.seed, index), &self.profile)
    }
}

impl Dialer for ChaosDialer {
    fn dial(&self, addr: &str) -> io::Result<Box<dyn ClientStream>> {
        let index = self.dials.fetch_add(1, Ordering::SeqCst);
        let schedule = self.schedule_for(index);
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Box::new(FaultyStream::new(stream, &schedule)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory duplex half: reads from a script, records writes.
    #[derive(Default)]
    struct Scripted {
        incoming: Vec<u8>,
        consumed: usize,
        written: Vec<u8>,
        resets: u32,
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let left = &self.incoming[self.consumed..];
            let n = left.len().min(buf.len());
            buf[..n].copy_from_slice(&left[..n]);
            self.consumed += n;
            Ok(n)
        }
    }

    impl Write for Scripted {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl HardReset for Scripted {
        fn hard_reset(&mut self) -> io::Result<()> {
            self.resets += 1;
            Ok(())
        }
    }

    #[test]
    fn short_read_caps_the_crossing_op() {
        let sched = SocketFaultSchedule::new().short_read(4, 2);
        let mut s = FaultyStream::new(
            Scripted {
                incoming: (0..16).collect(),
                ..Default::default()
            },
            &sched,
        );
        let mut buf = [0u8; 16];
        // First read stops exactly at the fault offset...
        assert_eq!(s.read(&mut buf).unwrap(), 4);
        // ...the next one is capped at 2 by the fault...
        assert_eq!(s.read(&mut buf).unwrap(), 2);
        assert_eq!(s.counts().shorts, 1);
        // ...and the rest flows freely.
        assert_eq!(s.read(&mut buf).unwrap(), 10);
        assert_eq!(s.positions().0, 16);
    }

    #[test]
    fn write_reset_fires_at_exact_offset() {
        let sched = SocketFaultSchedule::new().reset_at(SocketDir::Write, 7);
        let mut s = FaultyStream::new(Scripted::default(), &sched);
        // 7 bytes pass (capped from 10), then the reset fires.
        assert_eq!(s.write(&[1u8; 10]).unwrap(), 7);
        let err = s.write(&[1u8; 10]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(s.get_ref().resets, 1, "underlying transport was closed");
        // The stream stays poisoned in both directions.
        let mut buf = [0u8; 4];
        assert_eq!(
            s.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert_eq!(s.counts().resets, 1);
    }

    #[test]
    fn stall_applies_once_then_clears() {
        let sched = SocketFaultSchedule::new().stall_write(0, 1);
        let mut s = FaultyStream::new(Scripted::default(), &sched);
        assert_eq!(s.write(&[9u8; 3]).unwrap(), 3);
        assert_eq!(s.counts().stalls, 1);
        assert_eq!(s.write(&[9u8; 3]).unwrap(), 3);
        assert_eq!(s.counts().stalls, 1, "a stall fires exactly once");
        assert_eq!(s.get_ref().written.len(), 6);
    }

    #[test]
    fn faulty_stream_replay_is_deterministic() {
        let run = |seed: u64| {
            let profile = SocketChaosProfile {
                short_prob: 1.0,
                shorts: 3,
                ..Default::default()
            };
            let sched = SocketFaultSchedule::seeded(seed, &profile);
            let mut s = FaultyStream::new(
                Scripted {
                    incoming: (0u8..=255).collect(),
                    ..Default::default()
                },
                &sched,
            );
            let mut sizes = Vec::new();
            let mut buf = [0u8; 64];
            loop {
                let n = s.read(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                sizes.push(n);
            }
            (sizes, s.counts())
        };
        for seed in [1u64, 42, 1003] {
            assert_eq!(run(seed), run(seed), "seed {seed} replay diverged");
        }
    }

    #[test]
    fn connection_seed_decorrelates_indices() {
        let a = connection_seed(42, 0);
        let b = connection_seed(42, 1);
        let c = connection_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, connection_seed(42, 0));
    }
}
