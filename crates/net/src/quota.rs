//! Per-tenant admission quotas: token buckets keyed by tenant id.
//!
//! Every tenant gets the same bucket shape: `qps` tokens per second of
//! refill and a `burst` cap. A `Submit` that finds its tenant's bucket
//! empty is answered with a typed `Shed(QuotaExceeded)` carrying a
//! retry-after hint — the over-quota tenant is the *only* traffic shed by
//! quota, which the net bench asserts under saturating load.
//!
//! The bucket map is shared by every shard (quota is per tenant, not per
//! tenant-per-shard, so a tenant cannot multiply its allowance by
//! spreading connections). The critical section is a few float ops; the
//! hot counters the Stats frame reads live outside it as relaxed atomics.

use std::collections::HashMap;
use std::sync::Mutex;

/// Token-bucket shape applied to every tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaConfig {
    /// Sustained allowance, queries per second.
    pub qps: f64,
    /// Bucket capacity: how far a tenant may burst above the sustained
    /// rate after an idle period.
    pub burst: f64,
}

impl QuotaConfig {
    /// A sustained rate with a burst of one second's worth of tokens
    /// (minimum 1, so a tenant can always eventually submit).
    pub fn per_second(qps: f64) -> Self {
        QuotaConfig {
            qps,
            burst: qps.max(1.0),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_ns: u64,
}

/// Shared per-tenant token buckets.
#[derive(Debug)]
pub struct TenantQuotas {
    cfg: QuotaConfig,
    buckets: Mutex<HashMap<u32, Bucket>>,
}

impl TenantQuotas {
    /// Buckets with the given shape; tenants materialize (full) on first
    /// use.
    pub fn new(cfg: QuotaConfig) -> Self {
        TenantQuotas {
            cfg,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The configured shape.
    pub fn config(&self) -> QuotaConfig {
        self.cfg
    }

    /// Try to take one token from `tenant`'s bucket at `now_ns`
    /// (monotonic nanoseconds). `Ok(())` admits; `Err(retry_after_us)`
    /// sheds, with a hint of how long until a token accrues.
    pub fn try_admit(&self, tenant: u32, now_ns: u64) -> Result<(), u64> {
        let mut buckets = self.buckets.lock().unwrap();
        let b = buckets.entry(tenant).or_insert(Bucket {
            tokens: self.cfg.burst,
            last_ns: now_ns,
        });
        let dt_s = now_ns.saturating_sub(b.last_ns) as f64 / 1e9;
        b.tokens = (b.tokens + dt_s * self.cfg.qps).min(self.cfg.burst);
        // Clocks read on different shards can arrive here out of order;
        // moving `last_ns` backwards would re-grant the interval between
        // the two reads on the next refill. Advance-only.
        b.last_ns = b.last_ns.max(now_ns);
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Ok(())
        } else if self.cfg.qps > 0.0 {
            let wait_s = (1.0 - b.tokens) / self.cfg.qps;
            // `wait_s` is finite (qps > 0), but a tiny rate can push the
            // hint past u64 microseconds; `as` saturates, which is the
            // honest answer ("don't bother").
            Err((wait_s * 1e6).ceil() as u64)
        } else {
            Err(u64::MAX)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    #[test]
    fn burst_then_refill() {
        let q = TenantQuotas::new(QuotaConfig {
            qps: 2.0,
            burst: 3.0,
        });
        // Full bucket admits the burst...
        for _ in 0..3 {
            assert!(q.try_admit(7, 0).is_ok());
        }
        // ...then sheds with a sensible hint (need 1 token at 2 tokens/s).
        let hint = q.try_admit(7, 0).unwrap_err();
        assert!((400_000..=600_000).contains(&hint), "hint {hint}");
        // Half a second later one token has accrued.
        assert!(q.try_admit(7, S / 2).is_ok());
        assert!(q.try_admit(7, S / 2).is_err());
    }

    #[test]
    fn tenants_do_not_share_buckets() {
        let q = TenantQuotas::new(QuotaConfig {
            qps: 1.0,
            burst: 1.0,
        });
        assert!(q.try_admit(1, 0).is_ok());
        assert!(q.try_admit(1, 0).is_err());
        // A different tenant still has its full bucket.
        assert!(q.try_admit(2, 0).is_ok());
    }

    #[test]
    fn refill_caps_at_burst() {
        let q = TenantQuotas::new(QuotaConfig {
            qps: 10.0,
            burst: 2.0,
        });
        assert!(q.try_admit(1, 0).is_ok());
        // A long idle period refills to the cap, not beyond.
        for _ in 0..2 {
            assert!(q.try_admit(1, 100 * S).is_ok());
        }
        assert!(q.try_admit(1, 100 * S).is_err());
    }

    #[test]
    fn zero_rate_never_admits_after_burst() {
        let q = TenantQuotas::new(QuotaConfig {
            qps: 0.0,
            burst: 1.0,
        });
        assert!(q.try_admit(1, 0).is_ok());
        assert_eq!(q.try_admit(1, u64::MAX / 2), Err(u64::MAX));
    }

    #[test]
    fn out_of_order_clock_reads_do_not_regrant_tokens() {
        // Shard A reads the clock at t=10s, shard B at t=0, but B's
        // admit lands second. The backwards timestamp must not rewind
        // `last_ns` — otherwise the *next* admit at 10 s would re-earn
        // the whole 10 s interval a second time.
        let q = TenantQuotas::new(QuotaConfig {
            qps: 1.0,
            burst: 1.0,
        });
        // Bucket now empty, last = 10 s.
        assert!(q.try_admit(1, 10 * S).is_ok());
        // Stale read: no refill, no rewind.
        assert!(q.try_admit(1, 0).is_err());
        // At 10.5 s only 0.5 tokens have accrued since the last grant.
        assert!(
            q.try_admit(1, 10 * S + S / 2).is_err(),
            "backdated read re-granted the elapsed interval"
        );
        assert!(q.try_admit(1, 11 * S).is_ok());
    }

    #[test]
    fn zero_capacity_bucket_sheds_everything_with_saturated_hint() {
        let q = TenantQuotas::new(QuotaConfig {
            qps: 0.0,
            burst: 0.0,
        });
        assert_eq!(q.try_admit(1, 0), Err(u64::MAX));
        assert_eq!(q.try_admit(1, u64::MAX), Err(u64::MAX));
    }

    #[test]
    fn huge_elapsed_time_saturates_instead_of_overflowing() {
        let q = TenantQuotas::new(QuotaConfig {
            qps: 1e12,
            burst: 5.0,
        });
        assert!(q.try_admit(1, 0).is_ok());
        // ~585 years of nanoseconds at 10^12 qps: the f64 product is
        // astronomically large but must clamp at burst, not go inf/NaN.
        for _ in 0..5 {
            assert!(q.try_admit(1, u64::MAX).is_ok());
        }
        assert!(q.try_admit(1, u64::MAX).is_err());
    }

    #[test]
    fn subnormal_rate_hint_saturates_to_u64_max() {
        let q = TenantQuotas::new(QuotaConfig {
            qps: f64::MIN_POSITIVE,
            burst: 1.0,
        });
        assert!(q.try_admit(1, 0).is_ok());
        // wait_s ≈ 1/MIN_POSITIVE overflows u64 µs; `as` saturates.
        assert_eq!(q.try_admit(1, 0), Err(u64::MAX));
    }
}
