//! The query-serving RPC wire protocol.
//!
//! Every message on a connection is one *frame*: a fixed 10-byte header —
//! magic `u32`, version `u8`, kind `u8`, payload length `u32`, all
//! little-endian — followed by exactly `payload length` bytes of
//! kind-specific payload. The framing is deliberately the same shape as
//! the `pvfs::msg::ReadList` format (magic/version/validate/decode), and
//! carries the same conformance obligations: decoders reject bad magic,
//! unknown versions and kinds, truncated frames, trailing garbage, and
//! any payload field outside its domain — a server never acts on a
//! malformed frame, and `tests/net.rs` pins the byte layout with golden
//! vectors exactly like `tests/listio.rs` does for `ReadList`.
//!
//! Client → server frames: [`Frame::Submit`], [`Frame::Cancel`],
//! [`Frame::Drain`], [`Frame::Stats`]. Server → client frames:
//! [`Frame::Result`], [`Frame::Shed`], [`Frame::DrainAck`],
//! [`Frame::StatsReply`]. A `Submit` is answered by exactly one `Result`
//! or one `Shed` (this is the zero-result-loss contract graceful drain
//! preserves).

use parblast_serve::Priority;

/// Magic number opening every frame (`"PBN1"` bytes, read as LE `u32`).
pub const NET_MAGIC: u32 = 0x314E_4250;

/// Current protocol version.
pub const NET_VERSION: u8 = 1;

/// Frame header size: magic (4) + version (1) + kind (1) + payload len (4).
pub const FRAME_HEADER_LEN: usize = 10;

/// Largest payload a peer will accept (guards the read buffer against a
/// hostile or corrupt length prefix).
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// Why a frame was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The frame does not start with [`NET_MAGIC`].
    BadMagic,
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// The buffer ended before the declared payload (or carries trailing
    /// garbage past it).
    Truncated,
    /// Declared payload length exceeds [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// Priority byte outside `0..=2`.
    BadPriority(u8),
    /// Shed-reason byte outside its domain.
    BadReason(u8),
    /// Result-status byte outside its domain.
    BadStatus(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion(v) => write!(f, "unknown protocol version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::TooLarge(n) => write!(f, "declared payload of {n} bytes exceeds cap"),
            FrameError::BadPriority(p) => write!(f, "priority byte {p} out of range"),
            FrameError::BadReason(r) => write!(f, "shed reason byte {r} out of range"),
            FrameError::BadStatus(s) => write!(f, "result status byte {s} out of range"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Why a submitted query was refused (the typed `Shed` responses the
/// admission layer returns instead of silently dropping work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The shard's admission queue is at capacity — back off and retry.
    QueueFull = 0,
    /// The tenant's token bucket is empty — the *tenant* is over quota,
    /// not the server. Retrying before `retry_after_us` just sheds again.
    QuotaExceeded = 1,
    /// The server is draining and accepts no new work.
    Draining = 2,
    /// The query's deadline passed while it waited in the queue.
    Expired = 3,
    /// The query was cancelled by a `Cancel` frame before it ran.
    Cancelled = 4,
}

impl ShedReason {
    fn from_u8(b: u8) -> Result<Self, FrameError> {
        Ok(match b {
            0 => ShedReason::QueueFull,
            1 => ShedReason::QuotaExceeded,
            2 => ShedReason::Draining,
            3 => ShedReason::Expired,
            4 => ShedReason::Cancelled,
            other => return Err(FrameError::BadReason(other)),
        })
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "queue full"),
            ShedReason::QuotaExceeded => write!(f, "tenant quota exceeded"),
            ShedReason::Draining => write!(f, "server draining"),
            ShedReason::Expired => write!(f, "deadline expired in queue"),
            ShedReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Outcome code carried by a `Result` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultStatus {
    /// The search ran; the payload is the rendered tabular report.
    Ok = 0,
    /// The search failed on unrecoverable data corruption
    /// (`pvfs::msg::IoError::Corrupt` semantics — **not retryable**:
    /// re-submitting reads the same bad platter bytes).
    Corrupt = 1,
    /// The search failed for any other reason; the payload is the error
    /// text. Retryable at the client's discretion.
    Failed = 2,
}

impl ResultStatus {
    fn from_u8(b: u8) -> Result<Self, FrameError> {
        Ok(match b {
            0 => ResultStatus::Ok,
            1 => ResultStatus::Corrupt,
            2 => ResultStatus::Failed,
            other => return Err(FrameError::BadStatus(other)),
        })
    }
}

/// A point-in-time copy of the daemon's counters, served by the `Stats`
/// frame without taking any shard lock (the counters are relaxed atomics;
/// see `serve::metrics::ServeCounters`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Submits accepted into an admission queue.
    pub accepted: u64,
    /// Results returned (every accepted query ends here or in
    /// `expired`/`cancelled`).
    pub served: u64,
    /// Sheds with [`ShedReason::QueueFull`].
    pub shed_queue_full: u64,
    /// Sheds with [`ShedReason::QuotaExceeded`].
    pub shed_quota: u64,
    /// Sheds with [`ShedReason::Draining`].
    pub shed_draining: u64,
    /// Accepted queries whose deadline expired while queued.
    pub expired: u64,
    /// Accepted queries cancelled before execution.
    pub cancelled: u64,
    /// Scan-sharing batches executed.
    pub batches: u64,
    /// Database bytes the executed batches read.
    pub bytes_read: u64,
    /// Seed-scan kernel passes the executed batches ran (the fused
    /// multi-query kernel merges up to 8 queries into one pass per
    /// fragment).
    pub kernel_passes: u64,
    /// Kernel passes the fused kernel avoided versus per-query scanning.
    pub passes_saved: u64,
    /// Every decoded `Submit` frame, before any gate. The accounting
    /// identity `submits == accepted + shed_queue_full + shed_quota +
    /// shed_draining` holds at drain; combined with the accepted-side
    /// identity, `submits == served + shed + expired + cancelled`.
    pub submits: u64,
    /// Connections forcibly closed by the read-deadline (slowloris)
    /// guard.
    pub evicted: u64,
    /// Queries served by each shard, in shard order (the per-shard
    /// balance the bench reports).
    pub per_shard_served: Vec<u64>,
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Submit a query for execution.
    Submit {
        /// Client-chosen id, echoed by the `Result`/`Shed` answer.
        /// Unique per connection.
        id: u64,
        /// Tenant the query bills to (quota bucket key).
        tenant: u32,
        /// Scheduling class.
        priority: Priority,
        /// Relative deadline in microseconds from arrival; 0 = none.
        deadline_us: u64,
        /// Encoded query residues.
        query: Vec<u8>,
    },
    /// Best-effort cancel of a still-queued submit (by id, same
    /// connection). Answered by a `Shed(Cancelled)` if it was dequeued in
    /// time; otherwise the `Result` arrives normally.
    Cancel {
        /// Id of the submit to cancel.
        id: u64,
    },
    /// Ask the server to drain: stop accepting, finish everything
    /// accepted, flush results, exit. Answered by a `DrainAck`.
    Drain,
    /// Ask for a counter snapshot. Answered by a `StatsReply`.
    Stats,
    /// A completed query.
    Result {
        /// Echoed submit id.
        id: u64,
        /// Outcome code.
        status: ResultStatus,
        /// Rendered tabular report ([`ResultStatus::Ok`]) or error text.
        payload: Vec<u8>,
    },
    /// A refused query.
    Shed {
        /// Echoed submit id.
        id: u64,
        /// Why it was refused.
        reason: ShedReason,
        /// Hint: microseconds until a retry could succeed (0 = unknown).
        retry_after_us: u64,
    },
    /// Drain accepted; the server exits once in-flight work flushes.
    DrainAck {
        /// Queries still queued or executing at the time of the ack —
        /// every one of them will still receive its `Result`.
        queued: u64,
    },
    /// Counter snapshot.
    StatsReply(StatsSnapshot),
}

const KIND_SUBMIT: u8 = 1;
const KIND_CANCEL: u8 = 2;
const KIND_DRAIN: u8 = 3;
const KIND_STATS: u8 = 4;
const KIND_RESULT: u8 = 5;
const KIND_SHED: u8 = 6;
const KIND_DRAIN_ACK: u8 = 7;
const KIND_STATS_REPLY: u8 = 8;

impl Frame {
    /// Frame kind byte as it appears on the wire.
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Submit { .. } => KIND_SUBMIT,
            Frame::Cancel { .. } => KIND_CANCEL,
            Frame::Drain => KIND_DRAIN,
            Frame::Stats => KIND_STATS,
            Frame::Result { .. } => KIND_RESULT,
            Frame::Shed { .. } => KIND_SHED,
            Frame::DrainAck { .. } => KIND_DRAIN_ACK,
            Frame::StatsReply(_) => KIND_STATS_REPLY,
        }
    }
}

fn priority_to_u8(p: Priority) -> u8 {
    match p {
        Priority::Interactive => 0,
        Priority::Normal => 1,
        Priority::Bulk => 2,
    }
}

fn priority_from_u8(b: u8) -> Result<Priority, FrameError> {
    Ok(match b {
        0 => Priority::Interactive,
        1 => Priority::Normal,
        2 => Priority::Bulk,
        other => return Err(FrameError::BadPriority(other)),
    })
}

/// Encode `frame` into a complete wire frame (header + payload).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match frame {
        Frame::Submit {
            id,
            tenant,
            priority,
            deadline_us,
            query,
        } => {
            payload.extend_from_slice(&id.to_le_bytes());
            payload.extend_from_slice(&tenant.to_le_bytes());
            payload.push(priority_to_u8(*priority));
            payload.extend_from_slice(&deadline_us.to_le_bytes());
            payload.extend_from_slice(&(query.len() as u32).to_le_bytes());
            payload.extend_from_slice(query);
        }
        Frame::Cancel { id } => payload.extend_from_slice(&id.to_le_bytes()),
        Frame::Drain | Frame::Stats => {}
        Frame::Result {
            id,
            status,
            payload: body,
        } => {
            payload.extend_from_slice(&id.to_le_bytes());
            payload.push(*status as u8);
            payload.extend_from_slice(&(body.len() as u32).to_le_bytes());
            payload.extend_from_slice(body);
        }
        Frame::Shed {
            id,
            reason,
            retry_after_us,
        } => {
            payload.extend_from_slice(&id.to_le_bytes());
            payload.push(*reason as u8);
            payload.extend_from_slice(&retry_after_us.to_le_bytes());
        }
        Frame::DrainAck { queued } => payload.extend_from_slice(&queued.to_le_bytes()),
        Frame::StatsReply(s) => {
            for v in [
                s.accepted,
                s.served,
                s.shed_queue_full,
                s.shed_quota,
                s.shed_draining,
                s.expired,
                s.cancelled,
                s.batches,
                s.bytes_read,
                s.kernel_passes,
                s.passes_saved,
                s.submits,
                s.evicted,
            ] {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            payload.extend_from_slice(&(s.per_shard_served.len() as u32).to_le_bytes());
            for v in &s.per_shard_served {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&NET_MAGIC.to_le_bytes());
    out.push(NET_VERSION);
    out.push(frame.kind());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn take<const N: usize>(buf: &[u8], at: &mut usize) -> Result<[u8; N], FrameError> {
    let end = *at + N;
    if end > buf.len() {
        return Err(FrameError::Truncated);
    }
    let mut out = [0u8; N];
    out.copy_from_slice(&buf[*at..end]);
    *at = end;
    Ok(out)
}

fn take_u64(buf: &[u8], at: &mut usize) -> Result<u64, FrameError> {
    Ok(u64::from_le_bytes(take::<8>(buf, at)?))
}

fn take_u32(buf: &[u8], at: &mut usize) -> Result<u32, FrameError> {
    Ok(u32::from_le_bytes(take::<4>(buf, at)?))
}

fn take_bytes(buf: &[u8], at: &mut usize) -> Result<Vec<u8>, FrameError> {
    let len = take_u32(buf, at)? as usize;
    let end = at.checked_add(len).ok_or(FrameError::Truncated)?;
    if end > buf.len() {
        return Err(FrameError::Truncated);
    }
    let out = buf[*at..end].to_vec();
    *at = end;
    Ok(out)
}

/// Validate a frame header. Returns `(kind, payload_len)`; `Truncated`
/// when fewer than [`FRAME_HEADER_LEN`] bytes are available, so a stream
/// reader can call it on a growing buffer.
pub fn decode_header(buf: &[u8]) -> Result<(u8, u32), FrameError> {
    let mut at = 0usize;
    let magic = u32::from_le_bytes(take::<4>(buf, &mut at)?);
    if magic != NET_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = take::<1>(buf, &mut at)?[0];
    if version != NET_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let kind = take::<1>(buf, &mut at)?[0];
    if !(KIND_SUBMIT..=KIND_STATS_REPLY).contains(&kind) {
        return Err(FrameError::BadKind(kind));
    }
    let len = u32::from_le_bytes(take::<4>(buf, &mut at)?);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    Ok((kind, len))
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, FrameError> {
    let mut at = 0usize;
    let frame = match kind {
        KIND_SUBMIT => {
            let id = take_u64(payload, &mut at)?;
            let tenant = take_u32(payload, &mut at)?;
            let priority = priority_from_u8(take::<1>(payload, &mut at)?[0])?;
            let deadline_us = take_u64(payload, &mut at)?;
            let query = take_bytes(payload, &mut at)?;
            Frame::Submit {
                id,
                tenant,
                priority,
                deadline_us,
                query,
            }
        }
        KIND_CANCEL => Frame::Cancel {
            id: take_u64(payload, &mut at)?,
        },
        KIND_DRAIN => Frame::Drain,
        KIND_STATS => Frame::Stats,
        KIND_RESULT => {
            let id = take_u64(payload, &mut at)?;
            let status = ResultStatus::from_u8(take::<1>(payload, &mut at)?[0])?;
            let body = take_bytes(payload, &mut at)?;
            Frame::Result {
                id,
                status,
                payload: body,
            }
        }
        KIND_SHED => {
            let id = take_u64(payload, &mut at)?;
            let reason = ShedReason::from_u8(take::<1>(payload, &mut at)?[0])?;
            let retry_after_us = take_u64(payload, &mut at)?;
            Frame::Shed {
                id,
                reason,
                retry_after_us,
            }
        }
        KIND_DRAIN_ACK => Frame::DrainAck {
            queued: take_u64(payload, &mut at)?,
        },
        KIND_STATS_REPLY => {
            let mut vals = [0u64; 13];
            for v in vals.iter_mut() {
                *v = take_u64(payload, &mut at)?;
            }
            let shards = take_u32(payload, &mut at)? as usize;
            let mut per_shard_served = Vec::with_capacity(shards.min(4096));
            for _ in 0..shards {
                per_shard_served.push(take_u64(payload, &mut at)?);
            }
            Frame::StatsReply(StatsSnapshot {
                accepted: vals[0],
                served: vals[1],
                shed_queue_full: vals[2],
                shed_quota: vals[3],
                shed_draining: vals[4],
                expired: vals[5],
                cancelled: vals[6],
                batches: vals[7],
                bytes_read: vals[8],
                kernel_passes: vals[9],
                passes_saved: vals[10],
                submits: vals[11],
                evicted: vals[12],
                per_shard_served,
            })
        }
        other => return Err(FrameError::BadKind(other)),
    };
    if at != payload.len() {
        return Err(FrameError::Truncated);
    }
    Ok(frame)
}

/// Decode one complete frame from `buf`, which must contain exactly the
/// frame — a short buffer and trailing garbage both decode as
/// [`FrameError::Truncated`], mirroring `pvfs::decode_read_list`.
pub fn decode_frame(buf: &[u8]) -> Result<Frame, FrameError> {
    let (kind, len) = decode_header(buf)?;
    let end = FRAME_HEADER_LEN + len as usize;
    if buf.len() != end {
        return Err(FrameError::Truncated);
    }
    decode_payload(kind, &buf[FRAME_HEADER_LEN..end])
}

/// Incremental frame decoder for a byte stream: feed arbitrary chunks,
/// pop complete frames. Protocol errors are sticky — a connection that
/// ever produced garbage cannot resynchronize and must be dropped.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    poisoned: bool,
}

impl FrameReader {
    /// Fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame. `Ok(None)` = need more bytes.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.poisoned {
            return Err(FrameError::BadMagic);
        }
        match decode_header(&self.buf) {
            Err(FrameError::Truncated) if self.buf.len() < FRAME_HEADER_LEN => Ok(None),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
            Ok((kind, len)) => {
                let end = FRAME_HEADER_LEN + len as usize;
                if self.buf.len() < end {
                    return Ok(None);
                }
                let frame = decode_payload(kind, &self.buf[FRAME_HEADER_LEN..end]);
                match frame {
                    Ok(f) => {
                        self.buf.drain(..end);
                        Ok(Some(f))
                    }
                    Err(e) => {
                        self.poisoned = true;
                        Err(e)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: Frame) {
        let bytes = encode_frame(&f);
        assert_eq!(decode_frame(&bytes), Ok(f));
    }

    #[test]
    fn every_kind_round_trips() {
        round_trip(Frame::Submit {
            id: 7,
            tenant: 3,
            priority: Priority::Interactive,
            deadline_us: 1_000_000,
            query: vec![1, 2, 3, 0],
        });
        round_trip(Frame::Cancel { id: 9 });
        round_trip(Frame::Drain);
        round_trip(Frame::Stats);
        round_trip(Frame::Result {
            id: 7,
            status: ResultStatus::Ok,
            payload: b"query\tsubject\t...".to_vec(),
        });
        round_trip(Frame::Shed {
            id: 8,
            reason: ShedReason::QuotaExceeded,
            retry_after_us: 20_000,
        });
        round_trip(Frame::DrainAck { queued: 12 });
        round_trip(Frame::StatsReply(StatsSnapshot {
            accepted: 1,
            served: 2,
            shed_queue_full: 3,
            shed_quota: 4,
            shed_draining: 5,
            expired: 6,
            cancelled: 7,
            batches: 8,
            bytes_read: 9,
            kernel_passes: 10,
            passes_saved: 11,
            submits: 12,
            evicted: 13,
            per_shard_served: vec![4, 5, 6],
        }));
    }

    #[test]
    fn stream_reader_reassembles_split_frames() {
        let frames = vec![
            Frame::Submit {
                id: 1,
                tenant: 0,
                priority: Priority::Normal,
                deadline_us: 0,
                query: vec![9; 100],
            },
            Frame::Stats,
            Frame::Cancel { id: 1 },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(7) {
            reader.feed(chunk);
            while let Some(f) = reader.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn stream_reader_poisons_on_garbage() {
        let mut reader = FrameReader::new();
        reader.feed(&[0xFF; 16]);
        assert_eq!(reader.next_frame(), Err(FrameError::BadMagic));
        // Sticky: even good bytes afterwards are refused.
        reader.feed(&encode_frame(&Frame::Stats));
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn header_cap_guards_length_prefix() {
        let mut bytes = encode_frame(&Frame::Cancel { id: 1 });
        bytes[6..10].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::TooLarge(MAX_FRAME_LEN + 1))
        );
    }
}
