//! # parblast-net
//!
//! The networked serving tier: what puts the PR 5 scan-sharing service
//! behind a TCP socket so the batch job becomes a daemon that many
//! clients — and many *tenants* — can hit concurrently.
//!
//! ```text
//!   clients (N threads, T tenants)            pb-blastall --daemon
//!  ┌─────────────┐  Submit{tenant,deadline} ┌──────────────────────────┐
//!  │ NetClient   │ ────────────────────────▶│ NetServer                │
//!  │  retry +    │ ◀──────────────────────── │  shard 0: IO + exec      │
//!  │  backoff    │  Result | Shed{reason}   │  shard 1: IO + exec      │
//!  │ (pvfs PR 1  │                          │  ...thread-per-core...   │
//!  │  policy)    │  Drain → DrainAck → EOF  │  quotas · queue · drain  │
//!  └─────────────┘                          └──────────────────────────┘
//! ```
//!
//! * [`proto`] — the length-prefixed, versioned binary frame protocol
//!   (magic `"PBN1"`), built and tested to the same discipline as
//!   `pvfs::msg::ReadList`: golden byte vectors, every-prefix truncation
//!   rejection, round-trip proptests.
//! * [`server`] — the thread-per-core daemon: an acceptor hands
//!   connections round-robin to shards; each shard pairs a poll(2) IO
//!   thread with a batch-exec thread over the PR 5
//!   [`parblast_serve::AdmissionQueue`]. Per-tenant token buckets shed
//!   over-quota traffic with typed reasons; graceful drain answers every
//!   accepted query before closing a single socket.
//! * [`quota`] — the token buckets.
//! * [`runner`] — the execution bridge ([`BlastRunner`] over the real
//!   `pio` store, [`EchoRunner`] for tests); results are byte-identical
//!   to in-process [`parblast_serve::serve_batched`].
//! * [`client`] — the blocking client with the PR 1 timeout/retry/backoff
//!   policy (`Shed` and `Corrupt` are deterministic → never retried),
//!   pooled-connection retries, a retry budget, a circuit breaker,
//!   deadline propagation, and hedged Submits.
//! * [`chaos`] — deterministic socket fault injection ([`FaultyStream`],
//!   [`ChaosDialer`]) replaying seeded `hwsim` socket-fault schedules.
//! * [`resilience`] — the pure client-side state machines
//!   ([`RetryBudget`], [`CircuitBreaker`], [`LatencyTracker`]).

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod proto;
pub mod quota;
pub mod resilience;
pub mod runner;
pub mod server;

pub use chaos::{connection_seed, ChaosDialer, FaultCounts, FaultyStream, HardReset};
pub use client::{
    ClientConfig, ClientCounters, ClientError, ClientStream, Dialer, NetClient, Response, TcpDialer,
};
pub use proto::{
    decode_frame, decode_header, encode_frame, Frame, FrameError, FrameReader, ResultStatus,
    ShedReason, StatsSnapshot, FRAME_HEADER_LEN, MAX_FRAME_LEN, NET_MAGIC, NET_VERSION,
};
pub use quota::{QuotaConfig, TenantQuotas};
pub use resilience::{
    BreakerConfig, BreakerState, BudgetConfig, CircuitBreaker, HedgeConfig, LatencyTracker,
    RetryBudget,
};
pub use runner::{BatchRunner, BlastRunner, EchoRunner, RunnerError, RunnerOutput};
pub use server::{NetServer, ServerConfig, ServerHandle};
