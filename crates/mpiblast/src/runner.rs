//! The real parallel BLAST runner: a master/worker job over OS threads.
//!
//! Mirrors mpiBLAST's database-segmentation algorithm (§2.2): the master
//! hands unsearched fragments to idle workers; each worker pulls its
//! fragment's bytes through the configured I/O scheme, runs the search
//! engine, records small result writes, and returns hits; the master
//! merges results by alignment score. The MPI transport is replaced by
//! crossbeam channels — message-passing semantics are preserved.
//!
//! Each worker is a *pair* of threads: a fetch thread that pulls fragment
//! bytes through the I/O scheme and a search thread that runs the engine.
//! With [`ParallelBlast::prefetch`] on, the search thread keeps two
//! fragments in its pipeline, so fragment k+1 is fetched while fragment k
//! is searched and the I/O time hides behind compute; with it off the
//! pipeline depth is one and the pair degenerates to the sequential
//! fetch-then-search loop. Results and traced reads are identical either
//! way — only the overlap changes.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel;
use parblast_blast::{
    search_packed_batch_with, search_packed_with, BatchScanWorkspace, DbStats, Hit, Program,
    ScanWorkspace, SearchParams, MAX_FUSED_BATCH,
};
use parblast_seqdb::PackedVolume;

use crate::scheme::{Scheme, TracedSource};
use crate::trace::{IoKind, Tracer};

/// The two parallelization approaches of §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelization {
    /// mpiBLAST's approach: the database is segmented; every worker
    /// searches one fragment with the whole query. Reads the database
    /// once in total.
    DatabaseSegmentation,
    /// The older approach (WU-BLAST style): the query is split into
    /// pieces and every worker searches the *entire* database with its
    /// piece — "with the explosion of the database size, the first
    /// approach becomes less attractive due to large I/O overhead" (§2.2).
    /// `overlap` bases are repeated across piece boundaries so alignments
    /// spanning a boundary are not lost (must exceed the expected
    /// alignment length).
    QuerySegmentation {
        /// Number of query pieces (== parallel tasks).
        pieces: usize,
        /// Overlap between adjacent pieces, in residues.
        overlap: usize,
    },
}

/// A configured parallel BLAST job.
pub struct ParallelBlast {
    /// Which program to run (the paper uses blastn).
    pub program: Program,
    /// Engine parameters.
    pub params: SearchParams,
    /// Whole-database statistics (mpiBLAST semantics: E-values computed
    /// against the full database even per fragment).
    pub db: DbStats,
    /// Fragment object names, assignment order.
    pub fragments: Vec<String>,
    /// Worker count.
    pub workers: usize,
    /// I/O scheme.
    pub scheme: Scheme,
    /// Trace collector (use [`Tracer::disabled`] for timing runs, as the
    /// paper did).
    pub tracer: Tracer,
    /// Parallelization approach (§2.2).
    pub parallelization: Parallelization,
    /// Double-buffer fragment I/O: while a worker searches fragment k its
    /// fetch thread pulls fragment k+1 in the background. Off = the
    /// sequential fetch-then-search loop the paper measured.
    pub prefetch: bool,
    /// List I/O: after the volume header, fetch the index, packed data,
    /// and defline regions in ONE vectored request per storage server
    /// (`read_many_at`) instead of one request per region. Bytes read,
    /// traced events, and results are identical either way — only the
    /// request count changes.
    pub list_io: bool,
}

/// Result of a run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Merged hits, best first.
    pub hits: Vec<Hit>,
    /// Wall-clock seconds (copy time *included*; see `copy_s`).
    pub wall_s: f64,
    /// Total fragment-copy seconds across workers (the paper subtracts
    /// the average copy time from the original scheme's total).
    pub copy_s: f64,
    /// Seconds spent fetching fragment bytes, summed across fetch threads
    /// (copy + read + volume decode).
    pub io_fetch_s: f64,
    /// Seconds search threads sat idle waiting for fragment data;
    /// `1 - io_stall_s / io_fetch_s` is the fraction of I/O hidden
    /// behind compute.
    pub io_stall_s: f64,
    /// Per-fragment `(worker, search seconds)` pairs.
    pub per_fragment: Vec<(usize, f64)>,
}

/// Nanosecond clocks shared by the worker threads of one run.
#[derive(Debug, Default)]
struct IoClocks {
    copy_ns: AtomicU64,
    fetch_ns: AtomicU64,
    stall_ns: AtomicU64,
}

impl IoClocks {
    fn add(cell: &AtomicU64, d: Duration) {
        cell.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
    fn secs(cell: &AtomicU64) -> f64 {
        cell.load(Ordering::Relaxed) as f64 / 1e9
    }
}

struct FragmentResult {
    worker: usize,
    search_s: f64,
    hits: Vec<Hit>,
}

/// How many times the master hands out the same task before giving up and
/// failing the whole job (mpiBLAST-style abort-and-reassign: a transient
/// worker/I/O failure re-queues the fragment for another worker; a
/// persistent one surfaces as the job's error).
const MAX_TASK_ATTEMPTS: u32 = 3;

/// One unit of work: a fragment to search with a (sub-)query whose first
/// residue sits at `q_offset` of the original query.
#[derive(Debug, Clone)]
struct Task {
    fragment: String,
    q_offset: usize,
    q_len: usize,
}

/// Per-query result of a batch run.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Merged hits per query, in input order.
    pub per_query: Vec<Vec<Hit>>,
    /// Wall-clock seconds for the whole batch.
    pub wall_s: f64,
    /// Seconds spent fetching fragment bytes across fetch threads.
    pub io_fetch_s: f64,
    /// Seconds search threads waited for fragment data.
    pub io_stall_s: f64,
    /// Seed-scan kernel passes actually executed (one fused pass serves
    /// up to [`MAX_FUSED_BATCH`] queries per fragment).
    pub kernel_passes: u64,
    /// Kernel passes the fused kernel avoided versus the per-query path
    /// (`queries × fragments − kernel_passes` over the searched volumes).
    pub passes_saved: u64,
}

/// Which seed-scan kernel a batch run drives. [`BatchKernel::Fused`] is
/// the production path; [`BatchKernel::PerQuery`] preserves the
/// pre-fusion per-query loop so benches can interleave the two and assert
/// they are hit-for-hit identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchKernel {
    /// One merged-lookup pass per fragment serves the whole batch.
    Fused,
    /// Every query runs its own seed scan over every fragment.
    PerQuery,
}

/// Pull the next task for a worker's pipeline: block when the pipeline is
/// empty (the worker is idle), poll when it already holds work. Returns
/// `None` when the master has closed the queue and nothing is pending.
fn next_task<T>(task_rx: &channel::Receiver<T>, in_pipeline: usize) -> Option<T> {
    if in_pipeline == 0 {
        task_rx.recv().ok()
    } else {
        task_rx.try_recv()
    }
}

impl ParallelBlast {
    /// Run a batch of queries over the fragment set: each worker task
    /// searches one fragment with *all* queries (one pass over the data,
    /// the way production blastall streams query batches), so the database
    /// is still read only once in total. Drives the fused multi-query
    /// kernel: the batch's merged seed table rolls over each fragment's
    /// packed bytes once per [`MAX_FUSED_BATCH`]-query chunk instead of
    /// once per query, with hit-for-hit identical results.
    pub fn run_batch(&self, queries: &[Vec<u8>]) -> io::Result<BatchOutcome> {
        self.run_batch_with_kernel(queries, BatchKernel::Fused)
    }

    /// [`Self::run_batch`] with an explicit kernel choice; the per-query
    /// kernel exists for interleaved fused-vs-per-query benchmarking.
    pub fn run_batch_with_kernel(
        &self,
        queries: &[Vec<u8>],
        kernel: BatchKernel,
    ) -> io::Result<BatchOutcome> {
        let t0 = Instant::now();
        let kernel_passes = AtomicU64::new(0);
        let passes_saved = AtomicU64::new(0);
        let (task_tx, task_rx) = channel::unbounded::<String>();
        for f in &self.fragments {
            task_tx.send(f.clone()).expect("queue");
        }
        drop(task_tx);
        let (res_tx, res_rx) = channel::unbounded::<io::Result<Vec<(usize, Vec<Hit>)>>>();
        let clocks = IoClocks::default();
        let depth = if self.prefetch { 2 } else { 1 };
        std::thread::scope(|scope| {
            for w in 0..self.workers.max(1) {
                let task_rx = task_rx.clone();
                let res_tx = res_tx.clone();
                let tracer = self.tracer.clone();
                let clocks = &clocks;
                let kernel_passes = &kernel_passes;
                let passes_saved = &passes_saved;
                // Worker pair: the search thread feeds fragment names to
                // its fetcher, which sends back decoded volumes. One read
                // of each fragment serves every query; nucleotide data
                // stays 2-bit packed.
                let (fetch_tx, fetch_rx) = channel::unbounded::<String>();
                let (vol_tx, vol_rx) = channel::unbounded::<io::Result<PackedVolume>>();
                scope.spawn(move || {
                    while let Ok(fragment) = fetch_rx.recv() {
                        let r = self.fetch_volume(w, &fragment, &tracer, clocks);
                        if vol_tx.send(r).is_err() {
                            break;
                        }
                    }
                });
                scope.spawn(move || {
                    // One workspace per worker: scan and DP buffers are
                    // recycled across every fragment and every query.
                    let mut ws = ScanWorkspace::new();
                    let mut bws = BatchScanWorkspace::new();
                    let mut in_pipeline = 0usize;
                    loop {
                        while in_pipeline < depth {
                            match next_task(&task_rx, in_pipeline) {
                                Some(f) => {
                                    fetch_tx.send(f).expect("fetcher alive");
                                    in_pipeline += 1;
                                }
                                None => break,
                            }
                        }
                        if in_pipeline == 0 {
                            break;
                        }
                        let w0 = Instant::now();
                        let fetched = vol_rx.recv().expect("fetcher alive");
                        IoClocks::add(&clocks.stall_ns, w0.elapsed());
                        in_pipeline -= 1;
                        let r = fetched.map(|volume| {
                            let per_query: Vec<Vec<Hit>> = match kernel {
                                BatchKernel::Fused => {
                                    let refs: Vec<&[u8]> =
                                        queries.iter().map(|q| q.as_slice()).collect();
                                    search_packed_batch_with(
                                        self.program,
                                        &refs,
                                        &volume,
                                        &self.params,
                                        self.db,
                                        &mut bws,
                                    )
                                }
                                BatchKernel::PerQuery => queries
                                    .iter()
                                    .map(|q| {
                                        search_packed_with(
                                            self.program,
                                            q,
                                            &volume,
                                            &self.params,
                                            self.db,
                                            &mut ws,
                                        )
                                    })
                                    .collect(),
                            };
                            // Only blastn has a fused kernel; everything
                            // else scans once per query either way.
                            let passes = match (kernel, self.program) {
                                (BatchKernel::Fused, Program::Blastn) => {
                                    queries.len().div_ceil(MAX_FUSED_BATCH) as u64
                                }
                                _ => queries.len() as u64,
                            };
                            kernel_passes.fetch_add(passes, Ordering::Relaxed);
                            passes_saved
                                .fetch_add(queries.len() as u64 - passes, Ordering::Relaxed);
                            per_query.into_iter().enumerate().collect()
                        });
                        if res_tx.send(r).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            let mut per_query: Vec<Vec<Hit>> = vec![Vec::new(); queries.len()];
            for r in res_rx {
                for (qi, hits) in r? {
                    per_query[qi].extend(hits);
                }
            }
            for hits in &mut per_query {
                hits.sort_by(|a, b| {
                    a.best_evalue()
                        .partial_cmp(&b.best_evalue())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.best_score().cmp(&a.best_score()))
                        .then_with(|| a.subject_id.cmp(&b.subject_id))
                });
                hits.truncate(self.params.max_hits);
            }
            Ok(BatchOutcome {
                per_query,
                wall_s: t0.elapsed().as_secs_f64(),
                io_fetch_s: IoClocks::secs(&clocks.fetch_ns),
                io_stall_s: IoClocks::secs(&clocks.stall_ns),
                kernel_passes: kernel_passes.load(Ordering::Relaxed),
                passes_saved: passes_saved.load(Ordering::Relaxed),
            })
        })
    }

    /// Split the query into `pieces` overlapping windows (§2.2's query
    /// segmentation). Returns `(offset, len)` windows covering the query.
    fn query_windows(query_len: usize, pieces: usize, overlap: usize) -> Vec<(usize, usize)> {
        let pieces = pieces.clamp(1, query_len.max(1));
        let stride = query_len.div_ceil(pieces);
        (0..pieces)
            .map(|i| {
                let start = (i * stride).saturating_sub(if i > 0 { overlap } else { 0 });
                let end = ((i + 1) * stride).min(query_len);
                (start, end - start)
            })
            .filter(|&(_, len)| len > 0)
            .collect()
    }

    /// Run the job for one query.
    pub fn run(&self, query: &[u8]) -> io::Result<RunOutcome> {
        let t0 = Instant::now();
        let tasks: Vec<Task> = match self.parallelization {
            Parallelization::DatabaseSegmentation => self
                .fragments
                .iter()
                .map(|f| Task {
                    fragment: f.clone(),
                    q_offset: 0,
                    q_len: query.len(),
                })
                .collect(),
            Parallelization::QuerySegmentation { pieces, overlap } => {
                // Every piece searches every fragment: the whole database
                // is read once *per piece* — the §2.2 I/O overhead.
                Self::query_windows(query.len(), pieces, overlap)
                    .into_iter()
                    .flat_map(|(q_offset, q_len)| {
                        self.fragments.iter().map(move |f| Task {
                            fragment: f.clone(),
                            q_offset,
                            q_len,
                        })
                    })
                    .collect()
            }
        };
        // The master keeps the task sender so failed tasks can be handed
        // back out (abort-and-reassign); workers exit when it is dropped.
        let (task_tx, task_rx) = channel::unbounded::<(Task, u32)>();
        let mut outstanding = tasks.len();
        for t in tasks {
            task_tx.send((t, 1)).expect("queue");
        }
        let (res_tx, res_rx) = channel::unbounded::<(Task, u32, io::Result<FragmentResult>)>();
        let clocks = IoClocks::default();
        let depth = if self.prefetch { 2 } else { 1 };

        std::thread::scope(|scope| {
            for w in 0..self.workers.max(1) {
                let task_rx = task_rx.clone();
                let res_tx = res_tx.clone();
                let fetch_tracer = self.tracer.clone();
                let tracer = self.tracer.clone();
                let clocks = &clocks;
                // Worker pair: search thread → fetcher via `fetch_tx`,
                // fetcher → search thread via `vol_tx`.
                let (fetch_tx, fetch_rx) = channel::unbounded::<(Task, u32)>();
                let (vol_tx, vol_rx) =
                    channel::unbounded::<(Task, u32, io::Result<PackedVolume>)>();
                scope.spawn(move || {
                    while let Ok((task, attempt)) = fetch_rx.recv() {
                        let r = self.fetch_volume(w, &task.fragment, &fetch_tracer, clocks);
                        if vol_tx.send((task, attempt, r)).is_err() {
                            break;
                        }
                    }
                });
                scope.spawn(move || {
                    // Workspace reused across every task this worker runs.
                    let mut ws = ScanWorkspace::new();
                    let mut in_pipeline = 0usize;
                    loop {
                        // Keep `depth` fragments in flight: with prefetch,
                        // fragment k+1 is fetching while k is searched.
                        while in_pipeline < depth {
                            match next_task(&task_rx, in_pipeline) {
                                Some(t) => {
                                    fetch_tx.send(t).expect("fetcher alive");
                                    in_pipeline += 1;
                                }
                                None => break,
                            }
                        }
                        if in_pipeline == 0 {
                            break;
                        }
                        let w0 = Instant::now();
                        let (task, attempt, fetched) = vol_rx.recv().expect("fetcher alive");
                        IoClocks::add(&clocks.stall_ns, w0.elapsed());
                        in_pipeline -= 1;
                        let piece = &query[task.q_offset..task.q_offset + task.q_len];
                        let r = fetched.map(|volume| {
                            let s0 = Instant::now();
                            let mut hits = search_packed_with(
                                self.program,
                                piece,
                                &volume,
                                &self.params,
                                self.db,
                                &mut ws,
                            );
                            // Map piece coordinates back onto the query.
                            for hit in &mut hits {
                                for h in &mut hit.hsps {
                                    h.q_start += task.q_offset;
                                    h.q_end += task.q_offset;
                                }
                            }
                            // Small result write, as instrumented in the
                            // paper's Figure 4 (temporary result files of
                            // 50–778 bytes).
                            let table = parblast_blast::tabular("query", &hits);
                            let result_bytes = table.len().clamp(50, 778) as u64;
                            tracer.record(w as u32, IoKind::Write, result_bytes);
                            FragmentResult {
                                worker: w,
                                search_s: s0.elapsed().as_secs_f64(),
                                hits,
                            }
                        });
                        if res_tx.send((task, attempt, r)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            let mut hits: Vec<Hit> = Vec::new();
            let mut per_fragment = Vec::new();
            let mut failure: Option<io::Error> = None;
            while outstanding > 0 {
                let (task, attempt, r) = res_rx.recv().expect("workers alive");
                outstanding -= 1;
                let fr = match r {
                    Ok(fr) => fr,
                    Err(_) if attempt < MAX_TASK_ATTEMPTS && failure.is_none() => {
                        // Reassign: another worker (or the same one later)
                        // retries the fragment — a CEFT-backed scheme will
                        // have failed over to the mirror by then.
                        task_tx.send((task, attempt + 1)).expect("queue");
                        outstanding += 1;
                        continue;
                    }
                    Err(e) => {
                        // Attempts exhausted: stop reassigning, drain the
                        // in-flight tasks, and report the first error.
                        failure.get_or_insert(e);
                        continue;
                    }
                };
                per_fragment.push((fr.worker, fr.search_s));
                for hit in fr.hits {
                    // Under query segmentation the same subject can be
                    // found by several pieces: merge HSP lists per subject.
                    if let Some(existing) = hits.iter_mut().find(|h| h.subject_id == hit.subject_id)
                    {
                        for hsp in hit.hsps {
                            let dup = existing.hsps.iter().any(|e| {
                                e.s_start == hsp.s_start
                                    && e.s_end == hsp.s_end
                                    && e.q_start == hsp.q_start
                            });
                            if !dup {
                                existing.hsps.push(hsp);
                            }
                        }
                        existing.hsps.sort_by_key(|h| std::cmp::Reverse(h.score));
                    } else {
                        hits.push(hit);
                    }
                }
            }
            drop(task_tx); // all tasks done (or job failed): workers exit
            if let Some(e) = failure {
                return Err(e);
            }
            // Master merge: rank across fragments by E-value then score,
            // like mpiBLAST's score-ordered merge.
            hits.sort_by(|a, b| {
                a.best_evalue()
                    .partial_cmp(&b.best_evalue())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.best_score().cmp(&a.best_score()))
                    // Deterministic merge regardless of fragment arrival
                    // order: tie-break on the subject id.
                    .then_with(|| a.subject_id.cmp(&b.subject_id))
            });
            hits.truncate(self.params.max_hits);
            Ok(RunOutcome {
                hits,
                wall_s: t0.elapsed().as_secs_f64(),
                copy_s: IoClocks::secs(&clocks.copy_ns),
                io_fetch_s: IoClocks::secs(&clocks.fetch_ns),
                io_stall_s: IoClocks::secs(&clocks.stall_ns),
                per_fragment,
            })
        })
    }

    /// Fetch one fragment through the scheme and decode it: the fetch
    /// thread's whole job. The read sequence through [`TracedSource`] is
    /// exactly the sequential path's, whichever thread issues it.
    fn fetch_volume(
        &self,
        worker: usize,
        fragment: &str,
        tracer: &Tracer,
        clocks: &IoClocks,
    ) -> io::Result<PackedVolume> {
        let t0 = Instant::now();
        let (reader, copy) = self.scheme.open_for_worker(worker, fragment)?;
        let mut src = TracedSource::new(reader, tracer.clone(), worker as u32);
        let volume = if self.list_io {
            PackedVolume::read_from_listio(&mut src)?
        } else {
            PackedVolume::read_from(&mut src)?
        };
        IoClocks::add(&clocks.copy_ns, copy);
        IoClocks::add(&clocks.fetch_ns, t0.elapsed());
        Ok(volume)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parblast_seqdb::blastdb::SeqType;
    use parblast_seqdb::{extract_query, segment_into_fragments, SyntheticConfig, SyntheticNt};
    use std::path::{Path, PathBuf};

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("runner_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Build a small synthetic database split into `frags` fragments,
    /// loaded into `scheme`; returns (fragment names, query, db stats).
    fn setup(base: &Path, scheme: &Scheme, frags: u32) -> (Vec<String>, Vec<u8>, DbStats) {
        let mut g = SyntheticNt::new(SyntheticConfig {
            total_residues: 400_000,
            seed: 77,
            ..Default::default()
        });
        let mut seqs = vec![];
        while let Some(x) = g.next() {
            seqs.push(x);
        }
        let query = extract_query(&seqs[3].1, 568, 0.02, 5);
        let db = DbStats {
            residues: g.residues(),
            nseq: g.sequences(),
        };
        let dir = base.join("fmt");
        let infos = segment_into_fragments(&dir, "nt", SeqType::Nucleotide, frags, seqs).unwrap();
        let mut names = vec![];
        for info in infos {
            let bytes = std::fs::read(&info.path).unwrap();
            let name = info
                .path
                .file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned();
            scheme.load_fragment(&name, &bytes).unwrap();
            names.push(name);
        }
        (names, query, db)
    }

    fn run_with(scheme: Scheme, base: &Path, workers: usize) -> RunOutcome {
        let (fragments, query, db) = setup(base, &scheme, 4);
        let job = ParallelBlast {
            program: Program::Blastn,
            params: SearchParams::blastn(),
            db,
            fragments,
            workers,
            scheme,
            tracer: Tracer::new(),
            parallelization: Parallelization::DatabaseSegmentation,
            prefetch: false,
            list_io: false,
        };
        job.run(&query).unwrap()
    }

    #[test]
    fn local_scheme_finds_planted_query() {
        let base = tmp("local");
        let scheme = Scheme::local_at(&base.join("io"), 2).unwrap();
        let out = run_with(scheme, &base, 2);
        assert!(!out.hits.is_empty(), "query must be found");
        assert!(out.hits[0].best_evalue() < 1e-50);
        assert!(out.copy_s > 0.0, "original scheme copies fragments");
        assert_eq!(out.per_fragment.len(), 4);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn all_schemes_agree_on_results() {
        let base = tmp("agree");
        let l = Scheme::local_at(&base.join("l"), 2).unwrap();
        let p = Scheme::pvfs_at(&base.join("p"), 4, 64 << 10).unwrap();
        let c = Scheme::ceft_at(&base.join("c"), 2, 64 << 10).unwrap();
        let ol = run_with(l, &base, 2);
        let op = run_with(p, &base, 2);
        let oc = run_with(c, &base, 2);
        let key = |o: &RunOutcome| -> Vec<(String, i32)> {
            o.hits
                .iter()
                .map(|h| (h.subject_id.clone(), h.best_score()))
                .collect()
        };
        assert_eq!(key(&ol), key(&op), "PVFS results differ from original");
        assert_eq!(key(&ol), key(&oc), "CEFT results differ from original");
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn results_independent_of_worker_count() {
        let base = tmp("workers");
        let key = |o: &RunOutcome| -> Vec<String> {
            o.hits.iter().map(|h| h.subject_id.clone()).collect()
        };
        let s1 = Scheme::local_at(&base.join("w1"), 1).unwrap();
        let s4 = Scheme::local_at(&base.join("w4"), 4).unwrap();
        let o1 = run_with(s1, &base, 1);
        let o4 = run_with(s4, &base, 4);
        assert_eq!(key(&o1), key(&o4));
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn batch_run_matches_individual_runs() {
        let base = tmp("batch");
        let scheme = Scheme::local_at(&base.join("io"), 3).unwrap();
        let (fragments, q1, db) = setup(&base, &scheme, 4);
        // A second query from a different region.
        let q2: Vec<u8> = q1.iter().map(|&c| (c + 1) & 3).collect();
        let job = ParallelBlast {
            program: Program::Blastn,
            params: SearchParams::blastn(),
            db,
            fragments,
            workers: 3,
            scheme,
            tracer: Tracer::disabled(),
            parallelization: Parallelization::DatabaseSegmentation,
            prefetch: true,
            list_io: false,
        };
        let batch = job.run_batch(&[q1.clone(), q2.clone()]).unwrap();
        assert_eq!(batch.per_query.len(), 2);
        let single1 = job.run(&q1).unwrap();
        let key = |hits: &[parblast_blast::Hit]| -> Vec<(String, i32)> {
            hits.iter()
                .map(|h| (h.subject_id.clone(), h.best_score()))
                .collect()
        };
        assert_eq!(key(&batch.per_query[0]), key(&single1.hits));
    }

    #[test]
    fn fused_kernel_matches_per_query_kernel_and_counts_passes() {
        let base = tmp("fused");
        let scheme = Scheme::local_at(&base.join("io"), 2).unwrap();
        let (fragments, q1, db) = setup(&base, &scheme, 4);
        let nfrag = fragments.len() as u64;
        let job = ParallelBlast {
            program: Program::Blastn,
            params: SearchParams::blastn(),
            db,
            fragments,
            workers: 2,
            scheme,
            tracer: Tracer::disabled(),
            parallelization: Parallelization::DatabaseSegmentation,
            prefetch: false,
            list_io: false,
        };
        // 10 queries exercises the MAX_FUSED_BATCH=8 chunking inside the
        // fused kernel (2 passes per fragment instead of 10).
        let queries: Vec<Vec<u8>> = (0..10)
            .map(|i| q1.iter().map(|&c| (c + i) & 3).collect())
            .collect();
        let fused = job
            .run_batch_with_kernel(&queries, BatchKernel::Fused)
            .unwrap();
        let seq = job
            .run_batch_with_kernel(&queries, BatchKernel::PerQuery)
            .unwrap();
        assert_eq!(
            format!("{:?}", fused.per_query),
            format!("{:?}", seq.per_query),
            "fused kernel must be hit-for-hit identical"
        );
        assert!(!fused.per_query[0].is_empty(), "vacuous comparison");
        assert_eq!(fused.kernel_passes, 2 * nfrag);
        assert_eq!(fused.passes_saved, 8 * nfrag);
        assert_eq!(seq.kernel_passes, 10 * nfrag);
        assert_eq!(seq.passes_saved, 0);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn batch_reads_database_once() {
        let base = tmp("batch_io");
        let scheme = Scheme::local_at(&base.join("io"), 2).unwrap();
        let (fragments, q1, db) = setup(&base, &scheme, 4);
        let tracer = Tracer::new();
        let job = ParallelBlast {
            program: Program::Blastn,
            params: SearchParams::blastn(),
            db,
            fragments,
            workers: 2,
            scheme,
            tracer: tracer.clone(),
            parallelization: Parallelization::DatabaseSegmentation,
            prefetch: true,
            list_io: false,
        };
        let queries: Vec<Vec<u8>> = (0..5).map(|_| q1.clone()).collect();
        job.run_batch(&queries).unwrap();
        // Read bytes ≈ one database pass, independent of the query count.
        let read: u64 = tracer
            .events()
            .iter()
            .filter(|e| e.kind == crate::trace::IoKind::Read)
            .map(|e| e.bytes)
            .sum();
        let frag_total: u64 = 4 * 30_000; // loose lower bound sanity only
        assert!(read > frag_total);
        // Re-run with 1 query: read bytes must be identical.
        let tracer2 = Tracer::new();
        let job2 = ParallelBlast {
            tracer: tracer2.clone(),
            ..job
        };
        job2.run_batch(&queries[..1]).unwrap();
        let read1: u64 = tracer2
            .events()
            .iter()
            .filter(|e| e.kind == crate::trace::IoKind::Read)
            .map(|e| e.bytes)
            .sum();
        assert_eq!(read, read1, "batching must not re-read the database");
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn query_windows_cover_query_with_overlap() {
        let w = ParallelBlast::query_windows(1000, 4, 50);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0], (0, 250));
        // Later windows start `overlap` early.
        assert_eq!(w[1], (200, 300));
        assert_eq!(w.last().unwrap().0 + w.last().unwrap().1, 1000);
        // Degenerate cases.
        assert_eq!(ParallelBlast::query_windows(10, 1, 5), vec![(0, 10)]);
        let tiny = ParallelBlast::query_windows(3, 10, 2);
        let covered: usize = tiny.iter().map(|&(_, l)| l).sum();
        assert!(covered >= 3);
    }

    #[test]
    fn query_segmentation_finds_the_same_best_hit() {
        let base = tmp("qseg");
        let scheme = Scheme::local_at(&base.join("io"), 4).unwrap();
        let (fragments, query, db) = setup(&base, &scheme, 4);
        let mk = |parallelization| ParallelBlast {
            program: Program::Blastn,
            params: SearchParams::blastn(),
            db,
            fragments: fragments.clone(),
            workers: 4,
            scheme: scheme.clone(),
            tracer: Tracer::disabled(),
            parallelization,
            prefetch: false,
            list_io: false,
        };
        let db_seg = mk(Parallelization::DatabaseSegmentation)
            .run(&query)
            .unwrap();
        let q_seg = mk(Parallelization::QuerySegmentation {
            pieces: 4,
            overlap: 120,
        })
        .run(&query)
        .unwrap();
        // The planted subject is the top hit either way.
        assert_eq!(
            db_seg.hits[0].subject_id, q_seg.hits[0].subject_id,
            "top hit differs"
        );
        // Query segmentation can only fragment alignments, not invent
        // better ones.
        assert!(q_seg.hits[0].best_score() <= db_seg.hits[0].best_score());
        // But most of the alignment is still recovered by some piece.
        assert!(
            q_seg.hits[0].best_score() * 4 >= db_seg.hits[0].best_score(),
            "{} vs {}",
            q_seg.hits[0].best_score(),
            db_seg.hits[0].best_score()
        );
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn query_segmentation_multiplies_io_as_the_paper_says() {
        // §2.2: "With the explosion of the database size, the first
        // approach becomes less attractive due to large I/O overhead."
        let base = tmp("qseg_io");
        let scheme = Scheme::local_at(&base.join("io"), 4).unwrap();
        let (fragments, query, db) = setup(&base, &scheme, 4);
        let run_with_tracer = |parallelization| {
            let tracer = Tracer::new();
            ParallelBlast {
                program: Program::Blastn,
                params: SearchParams::blastn(),
                db,
                fragments: fragments.clone(),
                workers: 4,
                scheme: scheme.clone(),
                tracer: tracer.clone(),
                parallelization,
                prefetch: false,
                list_io: false,
            }
            .run(&query)
            .unwrap();
            tracer
                .events()
                .iter()
                .filter(|e| e.kind == crate::trace::IoKind::Read)
                .map(|e| e.bytes)
                .sum::<u64>()
        };
        let db_seg_bytes = run_with_tracer(Parallelization::DatabaseSegmentation);
        let q_seg_bytes = run_with_tracer(Parallelization::QuerySegmentation {
            pieces: 4,
            overlap: 120,
        });
        let ratio = q_seg_bytes as f64 / db_seg_bytes as f64;
        assert!(
            (ratio - 4.0).abs() < 0.2,
            "4 pieces must read the database ~4x: ratio = {ratio}"
        );
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn trace_shape_matches_figure_4() {
        // Read-dominated with small writes: mirrors §4.2's observation.
        let base = tmp("fig4");
        let scheme = Scheme::local_at(&base.join("io"), 4).unwrap();
        let (fragments, query, db) = setup(&base, &scheme, 8);
        let tracer = Tracer::new();
        let job = ParallelBlast {
            program: Program::Blastn,
            params: SearchParams::blastn(),
            db,
            fragments,
            workers: 4,
            scheme,
            tracer: tracer.clone(),
            parallelization: Parallelization::DatabaseSegmentation,
            prefetch: true,
            list_io: false,
        };
        job.run(&query).unwrap();
        let s = tracer.summary();
        assert!(s.read_fraction > 0.7, "reads dominate: {s:?}");
        assert!(s.read_max > 10_000, "bulk data reads present");
        assert!(s.write_max <= 778, "writes are small: {s:?}");
        assert!(s.writes >= 8, "one small write per fragment");
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn prefetch_preserves_results_and_trace() {
        // The double buffer may only change *when* I/O happens, never what
        // is read or what is found.
        let base = tmp("prefetch");
        let mut outs = Vec::new();
        for (i, prefetch) in [(0, false), (1, true)] {
            let scheme = Scheme::pvfs_at(&base.join(format!("p{i}")), 4, 64 << 10).unwrap();
            let (fragments, query, db) = setup(&base, &scheme, 6);
            let tracer = Tracer::new();
            let job = ParallelBlast {
                program: Program::Blastn,
                params: SearchParams::blastn(),
                db,
                fragments,
                workers: 3,
                scheme,
                tracer: tracer.clone(),
                parallelization: Parallelization::DatabaseSegmentation,
                prefetch,
                list_io: false,
            };
            let out = job.run(&query).unwrap();
            // Per-worker trace interleaving varies with thread timing;
            // the sorted event multiset must not.
            let mut events: Vec<(u8, u64)> = tracer
                .events()
                .iter()
                .map(|e| (matches!(e.kind, IoKind::Write) as u8, e.bytes))
                .collect();
            events.sort_unstable();
            outs.push((out, events));
        }
        let key = |o: &RunOutcome| -> Vec<(String, i32)> {
            o.hits
                .iter()
                .map(|h| (h.subject_id.clone(), h.best_score()))
                .collect()
        };
        assert_eq!(key(&outs[0].0), key(&outs[1].0), "hits differ");
        assert_eq!(outs[0].1, outs[1].1, "traced I/O differs");
        assert!(outs[1].0.io_fetch_s > 0.0);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn sequential_stall_accounts_for_the_whole_fetch() {
        // With the pipeline depth forced to one the search thread waits
        // out every fetch, so stall ≈ fetch; the bench's hidden fraction
        // is measured against exactly this baseline.
        let base = tmp("stall");
        let scheme = Scheme::pvfs_at(&base.join("p"), 4, 64 << 10).unwrap();
        let (fragments, query, db) = setup(&base, &scheme, 4);
        let job = ParallelBlast {
            program: Program::Blastn,
            params: SearchParams::blastn(),
            db,
            fragments,
            workers: 2,
            scheme,
            tracer: Tracer::disabled(),
            parallelization: Parallelization::DatabaseSegmentation,
            prefetch: false,
            list_io: false,
        };
        let out = job.run(&query).unwrap();
        assert!(out.io_fetch_s > 0.0, "fetch clock must run");
        assert!(
            out.io_stall_s > 0.5 * out.io_fetch_s,
            "sequential path must stall for most of the fetch: stall {} fetch {}",
            out.io_stall_s,
            out.io_fetch_s
        );
        std::fs::remove_dir_all(&base).ok();
    }
}
