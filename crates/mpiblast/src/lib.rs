//! # parblast-mpiblast
//!
//! The parallel BLAST layer of the workspace — mpiBLAST's master/worker
//! database-segmentation algorithm (§2.2 of the paper), in two forms:
//!
//! * [`runner`] — a **real** job over OS threads: workers pull formatted
//!   fragments through one of the three I/O [`scheme`]s (local copy /
//!   striped / mirrored), run the real search engine, and the master
//!   merges results by score. Every store access is recorded by the
//!   [`trace`] instrumentation (Figure 4).
//! * [`simblast`] — the **simulated twin** driving the calibrated cluster
//!   models, used to regenerate the paper's timing figures (5, 6, 7, 9) at
//!   the full 2.7 GB scale.

#![warn(missing_docs)]

pub mod runner;
pub mod scheme;
pub mod simblast;
pub mod trace;

pub use parblast_pio::{ScrubTotals, Scrubber};
pub use runner::{BatchKernel, BatchOutcome, ParallelBlast, Parallelization, RunOutcome};
pub use scheme::{Scheme, TracedSource};
pub use simblast::{
    run_simblast, SimBlastConfig, SimOutcome, SimScheme, WorkerStats, FRAG_FILE_BASE,
};
pub use trace::{IoKind, TraceEvent, TraceSummary, Tracer};
