//! The three I/O access schemes of the paper, as real storage backends.

use std::io;
use std::path::PathBuf;

use parblast_pio::{
    copy_object, LocalStore, MirroredStore, ObjectReader, ObjectStore, RateLimiter, Scrubber,
    StripedStore,
};
use parblast_seqdb::ReadAt;

use crate::trace::{IoKind, Tracer};

/// Which I/O scheme a run uses (§3 of the paper).
#[derive(Clone)]
pub enum Scheme {
    /// Original mpiBLAST: fragments live in a shared source directory and
    /// each worker copies its assigned fragment to a private local
    /// directory before searching it with conventional I/O.
    Local {
        /// Source of formatted fragments (the shared storage).
        src: LocalStore,
        /// Per-worker private directories ("local disks").
        workdirs: Vec<LocalStore>,
    },
    /// mpiBLAST over PVFS: fragments striped across server directories,
    /// read in place through the parallel client.
    Pvfs(StripedStore),
    /// mpiBLAST over CEFT-PVFS: mirrored striping with dual-half reads and
    /// hot-spot skipping.
    Ceft(MirroredStore),
}

impl Scheme {
    /// Human-readable scheme name (matches the paper's labels).
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Local { .. } => "original",
            Scheme::Pvfs(_) => "over-PVFS",
            Scheme::Ceft(_) => "over-CEFT-PVFS",
        }
    }

    /// Prepare a fragment for `worker` and return a reader plus the copy
    /// time (the paper measures and subtracts the copy).
    pub fn open_for_worker(
        &self,
        worker: usize,
        fragment: &str,
    ) -> io::Result<(Box<dyn ObjectReader>, std::time::Duration)> {
        match self {
            Scheme::Local { src, workdirs } => {
                let wd = &workdirs[worker % workdirs.len()];
                let t0 = std::time::Instant::now();
                copy_object(src, wd, fragment, 1 << 20)?;
                let copy = t0.elapsed();
                Ok((wd.open(fragment)?, copy))
            }
            Scheme::Pvfs(st) => Ok((st.open(fragment)?, std::time::Duration::ZERO)),
            Scheme::Ceft(st) => Ok((st.open(fragment)?, std::time::Duration::ZERO)),
        }
    }

    /// Model per-server disk bandwidth for the parallel schemes
    /// (bytes/second; 0 = unthrottled). No-op for the original scheme,
    /// whose reads go through the OS page cache like the paper's local
    /// disks. Benchmarks use this to stand in for ~26 MB/s 2003 disks.
    pub fn set_io_throttle(&self, bytes_per_s: u64) {
        match self {
            Scheme::Local { .. } => {}
            Scheme::Pvfs(st) => st.set_io_throttle(bytes_per_s),
            Scheme::Ceft(st) => st.set_io_throttle(bytes_per_s),
        }
    }

    /// Store fragments into the scheme's backing storage (setup step:
    /// `mpiformatdb` output distributed to where the scheme expects it).
    pub fn load_fragment(&self, fragment: &str, data: &[u8]) -> io::Result<()> {
        match self {
            Scheme::Local { src, .. } => src.put(fragment, data),
            Scheme::Pvfs(st) => st.put(fragment, data),
            Scheme::Ceft(st) => st.put(fragment, data),
        }
    }

    /// Start a background scrub over `fragments`: every stored stripe is
    /// re-read and verified against its checksum sidecar, paced to at most
    /// `bytes_per_s` (0 = unpaced) so foreground searches keep their disk
    /// bandwidth. CEFT rewrites corrupt stripes from the mirror partner;
    /// the schemes without redundancy only report them. Runs pass after
    /// pass until [`Scrubber::stop`], which returns the totals.
    pub fn start_scrub(&self, fragments: &[String], bytes_per_s: u64) -> Scrubber {
        let names: Vec<String> = fragments.to_vec();
        let mut limiter = RateLimiter::new(bytes_per_s);
        match self {
            Scheme::Local { src, .. } => {
                let store = src.clone();
                Scrubber::spawn(move || {
                    names
                        .iter()
                        .map(|n| {
                            store
                                .scrub_object(n, &mut limiter)
                                .map(|v| v.len() as u64)
                                .unwrap_or(0)
                        })
                        .sum()
                })
            }
            Scheme::Pvfs(st) => {
                let store = st.clone();
                Scrubber::spawn(move || {
                    names
                        .iter()
                        .map(|n| {
                            store
                                .scrub_object(n, &mut limiter)
                                .map(|v| v.len() as u64)
                                .unwrap_or(0)
                        })
                        .sum()
                })
            }
            Scheme::Ceft(st) => {
                let store = st.clone();
                Scrubber::spawn(move || {
                    names
                        .iter()
                        .map(|n| {
                            store
                                .scrub_object(n, &mut limiter)
                                .map(|(repaired, bad)| repaired + bad.len() as u64)
                                .unwrap_or(0)
                        })
                        .sum()
                })
            }
        }
    }

    /// Build a Local scheme rooted at `base` for `workers` workers.
    pub fn local_at(base: &std::path::Path, workers: usize) -> io::Result<Scheme> {
        let src = LocalStore::new(base.join("shared"))?;
        let workdirs = (0..workers.max(1))
            .map(|w| LocalStore::new(base.join(format!("worker{w}"))))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Scheme::Local { src, workdirs })
    }

    /// Build a PVFS scheme with `servers` directories under `base`.
    pub fn pvfs_at(base: &std::path::Path, servers: usize, stripe: u64) -> io::Result<Scheme> {
        let dirs: Vec<PathBuf> = (0..servers.max(1))
            .map(|i| base.join(format!("iod{i}")))
            .collect();
        Ok(Scheme::Pvfs(StripedStore::new(dirs, stripe)?))
    }

    /// Build a CEFT scheme with `servers_per_group`×2 directories.
    pub fn ceft_at(
        base: &std::path::Path,
        servers_per_group: usize,
        stripe: u64,
    ) -> io::Result<Scheme> {
        let p: Vec<PathBuf> = (0..servers_per_group.max(1))
            .map(|i| base.join(format!("primary{i}")))
            .collect();
        let m: Vec<PathBuf> = (0..servers_per_group.max(1))
            .map(|i| base.join(format!("mirror{i}")))
            .collect();
        Ok(Scheme::Ceft(MirroredStore::new(p, m, stripe)?))
    }
}

/// Adapter: a traced [`ObjectReader`] usable as a [`parblast_seqdb::ReadAt`]
/// source for volume decoding, recording every access.
pub struct TracedSource {
    reader: Box<dyn ObjectReader>,
    tracer: Tracer,
    worker: u32,
}

impl TracedSource {
    /// Wrap a reader.
    pub fn new(reader: Box<dyn ObjectReader>, tracer: Tracer, worker: u32) -> Self {
        TracedSource {
            reader,
            tracer,
            worker,
        }
    }
}

impl ReadAt for TracedSource {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.reader.read_at(offset, buf)?;
        self.tracer
            .record(self.worker, IoKind::Read, buf.len() as u64);
        Ok(())
    }
    fn read_many_at(&mut self, regions: &[(u64, u64)]) -> io::Result<Vec<u8>> {
        // Ride the store's vectored lane (one aggregated request per
        // server), but trace one read event per region in list order so
        // the recorded read sequence is identical to issuing the regions
        // one `read_at` at a time.
        let out = self.reader.read_many_at(regions)?;
        for &(_, len) in regions {
            self.tracer.record(self.worker, IoKind::Read, len);
        }
        Ok(out)
    }
    fn len(&mut self) -> io::Result<u64> {
        self.reader.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("scheme_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn all_three_schemes_round_trip() {
        let base = tmp("rt");
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 255) as u8).collect();
        for scheme in [
            Scheme::local_at(&base.join("l"), 2).unwrap(),
            Scheme::pvfs_at(&base.join("p"), 4, 64 << 10).unwrap(),
            Scheme::ceft_at(&base.join("c"), 2, 64 << 10).unwrap(),
        ] {
            scheme.load_fragment("nt.000.pdb", &data).unwrap();
            let (mut r, copy) = scheme.open_for_worker(0, "nt.000.pdb").unwrap();
            let mut buf = vec![0u8; data.len()];
            r.read_at(0, &mut buf).unwrap();
            assert_eq!(buf, data, "{}", scheme.name());
            match scheme {
                Scheme::Local { .. } => assert!(copy > std::time::Duration::ZERO),
                _ => assert_eq!(copy, std::time::Duration::ZERO),
            }
        }
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn traced_source_records_reads() {
        let base = tmp("trace");
        let scheme = Scheme::local_at(&base, 1).unwrap();
        scheme.load_fragment("f", &vec![7u8; 10_000]).unwrap();
        let (r, _) = scheme.open_for_worker(0, "f").unwrap();
        let tracer = Tracer::new();
        let mut src = TracedSource::new(r, tracer.clone(), 3);
        let mut buf = vec![0u8; 4096];
        src.read_at(100, &mut buf).unwrap();
        src.read_at(0, &mut buf[..13]).unwrap();
        let s = tracer.summary();
        assert_eq!(s.reads, 2);
        assert_eq!(s.read_min, 13);
        assert_eq!(s.read_max, 4096);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn background_scrub_repairs_ceft_corruption() {
        let base = tmp("scrub");
        let scheme = Scheme::ceft_at(&base, 2, 64 << 10).unwrap();
        let data: Vec<u8> = (0..300_000u32).map(|i| (i * 7 % 251) as u8).collect();
        scheme.load_fragment("nt.000", &data).unwrap();
        // Flip one byte of the primary copy behind the store's back.
        let victim = base.join("primary0").join("nt.000");
        let mut raw = std::fs::read(&victim).unwrap();
        let orig = raw[100];
        raw[100] ^= 0x40;
        std::fs::write(&victim, &raw).unwrap();
        let scrub = scheme.start_scrub(&["nt.000".into()], 0);
        // The scrub must find the mismatch and restore the mirror's bytes.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            if std::fs::read(&victim).unwrap()[100] == orig {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "scrub never repaired the flipped byte"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let totals = scrub.stop();
        assert!(totals.corrupt_found >= 1, "{totals:?}");
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn scheme_names_match_paper() {
        let base = tmp("names");
        assert_eq!(Scheme::local_at(&base, 1).unwrap().name(), "original");
        assert_eq!(Scheme::pvfs_at(&base, 2, 1024).unwrap().name(), "over-PVFS");
        assert_eq!(
            Scheme::ceft_at(&base, 1, 1024).unwrap().name(),
            "over-CEFT-PVFS"
        );
        std::fs::remove_dir_all(&base).ok();
    }
}
