//! The simulated twin of the parallel BLAST job, driving the calibrated
//! cluster models to regenerate the paper's timing figures (5, 6, 7, 9).
//!
//! The workload model comes from the real runner's measurements and the
//! paper's §4.2/§4.3 characterization:
//!
//! * each fragment is read once, in large chunks (default 8 MB — Figure
//!   4's mean read is ≈10 MB), through one of the three I/O schemes;
//! * between chunk reads the worker computes: sequence comparison at
//!   `search_rate` bytes/s with lognormal per-chunk variability (the CPU
//!   stays ≈99 % busy, I/O ≈11 % of the run at two workers — §4.3);
//! * each fragment ends with a few small buffered result writes
//!   (50–778 B, Figure 4);
//! * the master hands fragments to idle workers and the run ends when the
//!   last fragment completes (makespan).

use parblast_ceft::{Ceft, CeftClient, CeftConfig};
use parblast_hwsim::{
    start_stressor, Cluster, CpuMsg, DiskStressor, Envelope, Ev, FaultInjector, FaultSchedule,
    FsDone, FsMsg, HwParams, NetSend, StressorConfig,
};
use parblast_pvfs::{
    ClientReq, ClientResp, Iod, Pvfs, PvfsClient, Region, RetryPolicy, CTRL_BYTES,
};
use parblast_simcore::{CompId, Component, Ctx, Engine, SimTime, TraceEntry};

use crate::trace::{IoKind, Tracer};

/// Which simulated I/O scheme to use.
#[derive(Debug, Clone)]
pub enum SimScheme {
    /// Conventional I/O on each worker's local disk (original mpiBLAST).
    Original,
    /// PVFS with data servers on the given nodes (layout order).
    Pvfs {
        /// Data-server node indices.
        servers: Vec<u32>,
    },
    /// CEFT-PVFS with primary and mirror groups on the given nodes.
    Ceft {
        /// Primary-group node indices.
        primary: Vec<u32>,
        /// Mirror-group node indices.
        mirror: Vec<u32>,
    },
}

impl SimScheme {
    /// Scheme label used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SimScheme::Original => "original",
            SimScheme::Pvfs { .. } => "over-PVFS",
            SimScheme::Ceft { .. } => "over-CEFT-PVFS",
        }
    }
}

/// Simulation configuration. Defaults reproduce the paper's environment:
/// the 2.7 GB `nt` database, dual-CPU nodes, and a search rate calibrated
/// so I/O is ≈11 % of execution time for the original scheme.
#[derive(Debug, Clone)]
pub struct SimBlastConfig {
    /// Total cluster nodes (workers, servers and the master/metadata node).
    pub nodes: usize,
    /// Worker node indices (workers run on nodes `0..workers`).
    pub workers: u32,
    /// Fragment count (the paper uses fragments == workers).
    pub fragments: u32,
    /// Database size in bytes (nt: 2.7 GB).
    pub db_bytes: u64,
    /// I/O scheme.
    pub scheme: SimScheme,
    /// Node hosting the master and (for parallel schemes) the metadata
    /// server.
    pub master_node: u32,
    /// Application read chunk.
    pub chunk: u64,
    /// Search throughput per worker, bytes/second of database scanned.
    pub search_rate: f64,
    /// Coefficient of variation of per-chunk compute time (provides the
    /// natural worker staggering observed in real runs).
    pub compute_cv: f64,
    /// Small result writes per fragment.
    pub result_writes: u32,
    /// Result write size in bytes (Figure 4: mean 690 B).
    pub result_write_bytes: u64,
    /// Queries sharing each fragment scan (the serving layer's
    /// scan-sharing batch). One fragment read serves the whole batch, so
    /// I/O stays per-pass while compute and result writes scale by the
    /// batch size. `1` (the default) is the paper's single-query job and
    /// leaves the simulation event-for-event unchanged.
    pub queries_per_pass: u32,
    /// Fused multi-query seed-scan kernel: the batch's merged lookup
    /// table rolls over each chunk's packed bytes once per
    /// 8-query chunk instead of once per query, so only the per-query
    /// *extension* work still scales with the batch (see
    /// [`FUSED_SCAN_FRAC`]). `false` (the default) is the per-query
    /// kernel — compute scales linearly with `queries_per_pass` — and
    /// leaves the simulation event-for-event unchanged; either way a
    /// single-query pass costs exactly the same.
    pub fused_kernel: bool,
    /// Chunk read-ahead depth: how many chunks a worker keeps in flight
    /// or buffered *while computing*. `0` (the default) is the paper's
    /// synchronous loop — read, then compute, then read — and leaves the
    /// simulation event-for-event unchanged; `1` double-buffers so chunk
    /// k+1 arrives while chunk k is scanned.
    pub read_ahead: u32,
    /// List I/O: a worker ships its fragment's whole chunk list as ONE
    /// `ReadList` request (the client aggregates it into one vectored
    /// request per data server) instead of one `Read` per chunk. `false`
    /// (the default) is the per-chunk protocol and leaves the simulation
    /// event-for-event unchanged; either way every byte is read exactly
    /// once and the per-worker traced read sequence is identical.
    pub list_io: bool,
    /// Optional application-level I/O trace collector. Pass
    /// [`Tracer::simulated`] to take a Figure-4-style trace from inside
    /// the simulator with deterministic `SimTime` timestamps.
    pub io_tracer: Option<Tracer>,
    /// CEFT deployment configuration (read mode, skip policy, heartbeat).
    pub ceft: CeftConfig,
    /// Nodes whose disk is stressed by the Figure 8 program from t=0.
    pub stress_nodes: Vec<u32>,
    /// Deterministic fault schedule (server crashes, disk and network
    /// faults). Server indices are layout order: for CEFT, `0..N` is the
    /// primary group and `N..2N` the mirror group.
    pub faults: FaultSchedule,
    /// Client timeout/retry policy. `None` picks automatically: disabled
    /// (the faithful retry-free protocols) for a fault-free run, the
    /// default policy when `faults` is non-empty.
    pub retry: Option<RetryPolicy>,
    /// Delay before the job starts (lets CEFT's heartbeat monitors observe
    /// a pre-existing hot spot, matching the experimental procedure).
    pub warmup_s: f64,
    /// Hardware parameters.
    pub hw: HwParams,
    /// RNG seed.
    pub seed: u64,
    /// Simulation horizon (guards against runaway configurations).
    pub horizon_s: f64,
    /// Record every event delivery; the trace lands in
    /// [`SimOutcome::trace`] (determinism audits — off by default, it is
    /// one entry per event).
    pub capture_trace: bool,
}

impl Default for SimBlastConfig {
    fn default() -> Self {
        SimBlastConfig {
            nodes: 9,
            workers: 8,
            fragments: 8,
            db_bytes: 2_700_000_000,
            scheme: SimScheme::Original,
            master_node: 8,
            chunk: 8 << 20,
            // Calibrated so the original scheme's I/O fraction lands at
            // the paper's ≈11 % (§4.3): mmap reads deliver ≈18 MB/s
            // (26 MB/s media + per-fault overhead), so the search side
            // must run at ≈2.3 MB/s.
            search_rate: 2.27 * 1024.0 * 1024.0,
            compute_cv: 0.30,
            result_writes: 2,
            result_write_bytes: 690,
            queries_per_pass: 1,
            fused_kernel: false,
            read_ahead: 0,
            list_io: false,
            io_tracer: None,
            ceft: CeftConfig::default(),
            stress_nodes: Vec::new(),
            faults: FaultSchedule::default(),
            retry: None,
            warmup_s: 2.0,
            hw: HwParams::default(),
            seed: 42,
            horizon_s: 40_000.0,
            capture_trace: false,
        }
    }
}

/// Fraction of a single-query fragment search the fused kernel *shares*
/// across the batch: the seed-scan pass over the packed bytes. The
/// remaining `1 − FUSED_SCAN_FRAC` is per-query work (ungapped/gapped
/// extension, finalization) that still scales with the batch size.
///
/// Provenance: `bench --bin engine` fused batch-scaling curve
/// (BENCH_engine.json, `batch_scaling` section) on the scan-bound mix.
/// Solving the model's fused/sequential time ratio
/// `(B − (B − passes) × f) / B` (with `passes = ceil(B/8)`) for `f` at
/// the measured cells gives f = 0.83 at B=4 (measured ratio 0.374) and
/// f = 0.72 at B=8 (ratio 0.373); this constant is their mean. The
/// measured fused kernel is even faster than the model at B=1 (it also
/// merges the two strand contexts into one pass), but the model pins
/// `factor(1) = 1` so an unbatched sim keeps the calibrated
/// single-query service time.
pub const FUSED_SCAN_FRAC: f64 = 0.78;

impl SimBlastConfig {
    /// Compute-cost multiplier of one scan pass relative to a
    /// single-query pass. The per-query kernel scans once per query —
    /// linear in `queries_per_pass`. The fused kernel executes
    /// `ceil(B/8)` merged scan passes and only the extension share
    /// scales per query: `B − saved_passes × FUSED_SCAN_FRAC`. A
    /// single-query pass costs exactly `1.0` under either kernel.
    pub fn batch_compute_factor(&self) -> f64 {
        let b = self.queries_per_pass.max(1);
        if !self.fused_kernel {
            return b as f64;
        }
        let passes = u64::from(b).div_ceil(8);
        b as f64 - (u64::from(b) - passes) as f64 * FUSED_SCAN_FRAC
    }
}

/// Per-worker accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Seconds spent waiting for reads.
    pub io_s: f64,
    /// Seconds spent computing.
    pub compute_s: f64,
    /// Fragments searched.
    pub fragments: u32,
    /// Bytes read.
    pub bytes_read: u64,
}

/// Outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Job start → last fragment completion (or abort/horizon), seconds.
    pub makespan_s: f64,
    /// Per-worker statistics.
    pub per_worker: Vec<WorkerStats>,
    /// Aggregate I/O fraction `io / (io + compute)`.
    pub io_fraction: f64,
    /// Parts redirected away from hot servers (CEFT only).
    pub skipped_parts: u64,
    /// Did every fragment complete? `false` with an `error` means the job
    /// aborted on an I/O error; `false` without one means it hung until
    /// the horizon (original PVFS's behavior on a dead server).
    pub completed: bool,
    /// The I/O error that aborted the job, if any.
    pub error: Option<String>,
    /// Client requests re-sent after a timeout, summed over workers.
    pub retries: u64,
    /// Timed-out reads re-routed to a mirror partner (CEFT only).
    pub failovers: u64,
    /// Corrupt stripes rewritten from the mirror partner's good copy
    /// (CEFT read-repair), summed over workers.
    pub repaired_stripes: u64,
    /// Online resyncs completed by the metadata server (CEFT with
    /// [`parblast_ceft::CeftConfig::resync_rate`] set).
    pub resyncs: u64,
    /// Foreground read-latency tail across all CEFT clients, in
    /// microseconds (zeroed for the other schemes). The integrity bench
    /// compares this clean vs. during an online rebuild.
    pub read_latency_us: parblast_simcore::Percentiles,
    /// Event-delivery trace (empty unless
    /// [`SimBlastConfig::capture_trace`] was set).
    pub trace: Vec<TraceEntry>,
    /// Read requests served by the data servers (PVFS/CEFT; 0 for the
    /// original scheme's local disks). A vectored list request counts
    /// once however many regions it carries — this is the number the
    /// list-I/O aggregation collapses.
    pub server_reads: u64,
    /// Of [`SimOutcome::server_reads`], how many were vectored
    /// `ReadList` requests.
    pub server_list_reads: u64,
    /// Regions carried by those list requests in total.
    pub server_list_regions: u64,
}

/// Simulated file id of fragment 0; fragment `i` is file
/// `FRAG_FILE_BASE + i`. Public so fault schedules built outside this
/// crate (experiments, tests) can target a specific fragment's stripes
/// with [`parblast_hwsim::FaultSchedule::corrupt_stripe`].
pub const FRAG_FILE_BASE: u64 = 500;

/// Messages between master and workers.
#[derive(Debug, Clone)]
enum JobMsg {
    Assign {
        fragment: u32,
        size: u64,
    },
    Done {
        worker: u32,
    },
    /// A fragment's I/O failed past the client's retry budget; the worker
    /// aborted it and is idle again.
    Failed {
        worker: u32,
        fragment: u32,
        size: u64,
        error: String,
    },
}

/// Adapter giving the Original scheme the same `ClientReq`/`ClientResp`
/// interface as the PVFS/CEFT clients, backed by the node's local FS.
struct LocalClient {
    fs: CompId,
    pending: std::collections::HashMap<u64, (CompId, u64, SimTime, u64)>,
    /// FS-read token → owning list id (list-I/O regions in flight).
    list_regions: std::collections::HashMap<u64, u64>,
    /// List id → (reply_to, app tag, start, total bytes, regions left).
    lists: std::collections::HashMap<u64, (CompId, u64, SimTime, u64, u32)>,
    name: String,
}

impl LocalClient {
    fn new(name: impl Into<String>, fs: CompId) -> Self {
        LocalClient {
            fs,
            pending: std::collections::HashMap::new(),
            list_regions: std::collections::HashMap::new(),
            lists: std::collections::HashMap::new(),
            name: name.into(),
        }
    }
}

impl Component<Ev> for LocalClient {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        match ev {
            Ev::User(env) => {
                let req: ClientReq = env.expect();
                match req {
                    ClientReq::Open { reply_to, tag, .. } => {
                        // A local open is a metadata touch: ~0.1 ms.
                        ctx.schedule_in(
                            SimTime::from_micros(100),
                            reply_to,
                            Ev::User(Envelope::local(ClientResp::OpenDone {
                                tag,
                                latency: SimTime::from_micros(100),
                            })),
                        );
                    }
                    ClientReq::Read {
                        file,
                        offset,
                        len,
                        reply_to,
                        tag,
                    } => {
                        let token = ctx.fresh_token();
                        self.pending.insert(token, (reply_to, tag, ctx.now(), len));
                        ctx.send(
                            self.fs,
                            Ev::Fs(FsMsg::Read {
                                file,
                                offset,
                                len,
                                // The original scheme uses conventional
                                // memory-mapped I/O (§3).
                                mmap: true,
                                unit: 0,
                                reply_to: ctx.self_id(),
                                tag: token,
                            }),
                        );
                    }
                    ClientReq::ReadList {
                        file,
                        regions,
                        reply_to,
                        tag,
                    } => {
                        // The local disk has no per-request network cost to
                        // amortize, but honoring the op keeps the Original
                        // scheme usable with the list knob on: every region
                        // is read, one reply reports the whole list.
                        let list = ctx.fresh_token();
                        let total: u64 = regions.iter().map(|r| r.len).sum();
                        self.lists.insert(
                            list,
                            (reply_to, tag, ctx.now(), total, regions.len() as u32),
                        );
                        for r in regions {
                            let token = ctx.fresh_token();
                            self.list_regions.insert(token, list);
                            ctx.send(
                                self.fs,
                                Ev::Fs(FsMsg::Read {
                                    file,
                                    offset: r.offset,
                                    len: r.len,
                                    mmap: true,
                                    unit: 0,
                                    reply_to: ctx.self_id(),
                                    tag: token,
                                }),
                            );
                        }
                    }
                    ClientReq::Write {
                        file,
                        offset,
                        len,
                        reply_to,
                        tag,
                    } => {
                        let token = ctx.fresh_token();
                        self.pending.insert(token, (reply_to, tag, ctx.now(), len));
                        ctx.send(
                            self.fs,
                            Ev::Fs(FsMsg::Write {
                                file,
                                offset,
                                len,
                                sync: false,
                                reply_to: ctx.self_id(),
                                tag: token,
                            }),
                        );
                    }
                }
            }
            Ev::FsDone(FsDone { tag, latency, .. }) => {
                if let Some((reply_to, app_tag, _, len)) = self.pending.remove(&tag) {
                    // Reads and writes share the pending map; the worker
                    // disambiguates by its own tag protocol.
                    ctx.send(
                        reply_to,
                        Ev::User(Envelope::local(ClientResp::ReadDone {
                            tag: app_tag,
                            latency,
                            len,
                        })),
                    );
                } else if let Some(list) = self.list_regions.remove(&tag) {
                    let e = self.lists.get_mut(&list).expect("list state");
                    e.4 -= 1;
                    if e.4 == 0 {
                        let (reply_to, app_tag, t0, total, _) =
                            self.lists.remove(&list).expect("list state");
                        ctx.send(
                            reply_to,
                            Ev::User(Envelope::local(ClientResp::ReadDone {
                                tag: app_tag,
                                latency: ctx.now().saturating_sub(t0).max(latency),
                                len: total,
                            })),
                        );
                    }
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Worker tag kinds, in the low two bits; the high bits carry the
/// worker's abort generation so replies belonging to an aborted fragment
/// are recognized and dropped. Generation 0 (any fault-free run) leaves
/// the tags — and thus the event stream — exactly as before the
/// generation scheme existed.
const TAG_READ: u64 = 2;
const TAG_WRITE: u64 = 3;
const TAG_OPEN: u64 = 1;
const TAG_KIND_BITS: u64 = 3;

struct SimWorker {
    index: u32,
    node: u32,
    client: CompId,
    cpu: CompId,
    master: (u32, CompId),
    net: CompId,
    chunk: u64,
    search_rate: f64,
    compute_cv: f64,
    result_writes: u32,
    result_write_bytes: u64,
    batch: u32,
    /// Per-pass compute multiplier ([`SimBlastConfig::batch_compute_factor`]):
    /// `batch` under the per-query kernel, sublinear under the fused one.
    compute_factor: f64,
    read_ahead: u32,
    list_io: bool,
    tracer: Option<Tracer>,
    // run state
    fragment: Option<(u32, u64)>,
    offset: u64,
    writes_left: u32,
    cpu_pending: u8,
    /// Abort generation: bumped when a fragment is handed back so stale
    /// in-flight replies (reads, CPU completions) are dropped.
    gen: u64,
    /// Chunk reads submitted and not yet delivered.
    inflight: u32,
    /// Chunk lengths of the in-flight `ReadList` (list-I/O mode): the one
    /// `ReadDone` reply re-expands into these per-chunk compute slices.
    list_chunks: Vec<u64>,
    /// Delivered chunks (their lengths) waiting for the CPU.
    buffered: std::collections::VecDeque<u64>,
    stats: WorkerStats,
    name: String,
}

impl SimWorker {
    fn issue_read(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let (frag, size) = self.fragment.expect("assigned");
        let len = self.chunk.min(size - self.offset);
        ctx.send(
            self.client,
            Ev::User(Envelope::local(ClientReq::Read {
                file: FRAG_FILE_BASE + frag as u64,
                offset: self.offset,
                len,
                reply_to: ctx.self_id(),
                tag: TAG_READ | (self.gen << 2),
            })),
        );
        self.offset += len;
        self.stats.bytes_read += len;
        self.inflight += 1;
    }

    /// Ship the fragment's whole remaining chunk list as one `ReadList`:
    /// the client turns it into one vectored request per data server.
    fn issue_list_read(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let (frag, size) = self.fragment.expect("assigned");
        let mut regions = Vec::new();
        while self.offset < size {
            let len = self.chunk.min(size - self.offset);
            regions.push(Region::new(self.offset, len));
            self.offset += len;
            self.stats.bytes_read += len;
        }
        self.list_chunks = regions.iter().map(|r| r.len).collect();
        ctx.send(
            self.client,
            Ev::User(Envelope::local(ClientReq::ReadList {
                file: FRAG_FILE_BASE + frag as u64,
                regions,
                reply_to: ctx.self_id(),
                tag: TAG_READ | (self.gen << 2),
            })),
        );
        self.inflight += 1;
    }

    /// Top up the chunk pipeline. While the CPU is busy the worker keeps
    /// `read_ahead` chunks in flight or buffered; when it is idle at
    /// least one read goes out (the synchronous path's only read).
    fn fill_pipeline(&mut self, ctx: &mut Ctx<'_, Ev>) {
        let Some((_, size)) = self.fragment else {
            return;
        };
        if self.list_io {
            // One vectored request covers the fragment; nothing to top up.
            if self.offset < size && self.inflight == 0 {
                self.issue_list_read(ctx);
            }
            return;
        }
        let cap = if self.cpu_pending > 0 {
            self.read_ahead
        } else {
            self.read_ahead.max(1)
        };
        while self.offset < size && self.inflight + (self.buffered.len() as u32) < cap {
            self.issue_read(ctx);
        }
    }

    /// Start scanning one delivered chunk. blastall runs one search
    /// thread per CPU (the paper reports ≈99 % CPU busy on the dual-CPU
    /// nodes): two parallel jobs, the chunk is done when both finish. A
    /// scan-sharing batch multiplies the compute (every query scans the
    /// chunk) but not the read.
    fn start_compute(&mut self, ctx: &mut Ctx<'_, Ev>, len: u64) {
        let factor = ctx.rng().lognormal_mean_cv(1.0, self.compute_cv);
        let work = len as f64 * self.compute_factor / self.search_rate * factor;
        self.cpu_pending = 2;
        for _ in 0..2 {
            ctx.send(
                self.cpu,
                Ev::Cpu(CpuMsg::Run {
                    work,
                    reply_to: ctx.self_id(),
                    tag: self.gen,
                }),
            );
        }
        // The chunk just moved out of the buffer: refill its slot so the
        // next read overlaps this scan.
        self.fill_pipeline(ctx);
    }

    fn issue_write_or_finish(&mut self, ctx: &mut Ctx<'_, Ev>) {
        if self.writes_left > 0 {
            self.writes_left -= 1;
            let (frag, _) = self.fragment.expect("assigned");
            if let Some(tr) = &self.tracer {
                tr.advance_to(ctx.now());
                tr.record(self.index, IoKind::Write, self.result_write_bytes);
            }
            ctx.send(
                self.client,
                Ev::User(Envelope::local(ClientReq::Write {
                    file: FRAG_FILE_BASE + frag as u64,
                    offset: 0,
                    len: self.result_write_bytes,
                    reply_to: ctx.self_id(),
                    tag: TAG_WRITE | (self.gen << 2),
                })),
            );
        } else {
            self.stats.fragments += 1;
            self.fragment = None;
            let me_idx = self.index;
            ctx.send(
                self.net,
                Ev::Net(NetSend {
                    src_node: self.node,
                    dst_node: self.master.0,
                    bytes: CTRL_BYTES,
                    dst: self.master.1,
                    payload: Box::new(JobMsg::Done { worker: me_idx }),
                }),
            );
        }
    }
}

impl Component<Ev> for SimWorker {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        match ev {
            Ev::User(env) => {
                // Either a master assignment or a client response.
                match env.payload.downcast::<JobMsg>() {
                    Ok(msg) => {
                        if let JobMsg::Assign { fragment, size } = *msg {
                            self.fragment = Some((fragment, size));
                            self.offset = 0;
                            // Every query in the scan-sharing batch writes
                            // its own small result files.
                            self.writes_left = self.result_writes * self.batch;
                            ctx.send(
                                self.client,
                                Ev::User(Envelope::local(ClientReq::Open {
                                    file: FRAG_FILE_BASE + fragment as u64,
                                    reply_to: ctx.self_id(),
                                    tag: TAG_OPEN | (self.gen << 2),
                                })),
                            );
                        }
                    }
                    Err(other) => {
                        let resp: ClientResp = *other
                            .downcast::<ClientResp>()
                            .expect("worker got unknown message");
                        match resp {
                            ClientResp::OpenDone { tag, .. } => {
                                if tag >> 2 == self.gen {
                                    self.fill_pipeline(ctx);
                                }
                            }
                            ClientResp::ReadDone { latency, len, tag }
                                if tag & TAG_KIND_BITS == TAG_READ =>
                            {
                                if tag >> 2 != self.gen {
                                    return; // reply for an aborted fragment
                                }
                                self.inflight -= 1;
                                self.stats.io_s += latency.as_secs_f64();
                                if self.list_io {
                                    // The whole chunk list arrived as one
                                    // reply: re-expand it so the compute
                                    // loop (and the trace) still proceeds
                                    // chunk by chunk, as the per-chunk
                                    // protocol would.
                                    let chunks = std::mem::take(&mut self.list_chunks);
                                    if let Some(tr) = &self.tracer {
                                        tr.advance_to(ctx.now());
                                        for &c in &chunks {
                                            tr.record(self.index, IoKind::Read, c);
                                        }
                                    }
                                    self.buffered.extend(chunks);
                                    if self.cpu_pending == 0 {
                                        if let Some(first) = self.buffered.pop_front() {
                                            self.start_compute(ctx, first);
                                        }
                                    }
                                    return;
                                }
                                if let Some(tr) = &self.tracer {
                                    tr.advance_to(ctx.now());
                                    tr.record(self.index, IoKind::Read, len);
                                }
                                if self.cpu_pending == 0 {
                                    self.start_compute(ctx, len);
                                } else {
                                    // Read-ahead delivered mid-scan: park
                                    // the chunk until the CPU frees up.
                                    self.buffered.push_back(len);
                                }
                            }
                            // LocalClient replies to writes as ReadDone with
                            // the write tag; treat any non-read completion
                            // as a finished write.
                            ClientResp::ReadDone { tag, .. }
                            | ClientResp::WriteDone { tag, .. } => {
                                if tag >> 2 == self.gen && self.fragment.is_some() {
                                    self.issue_write_or_finish(ctx);
                                }
                            }
                            ClientResp::Error { error, tag, .. } => {
                                // The client gave up on a server. Abort the
                                // fragment — dropping any prefetched chunks
                                // and in-flight reads with it — and hand it
                                // back to the master for reassignment.
                                if tag >> 2 != self.gen {
                                    return; // the fragment is already gone
                                }
                                let Some((fragment, size)) = self.fragment.take() else {
                                    return;
                                };
                                self.gen += 1;
                                self.inflight = 0;
                                self.list_chunks.clear();
                                self.buffered.clear();
                                self.cpu_pending = 0;
                                let worker = self.index;
                                ctx.send(
                                    self.net,
                                    Ev::Net(NetSend {
                                        src_node: self.node,
                                        dst_node: self.master.0,
                                        bytes: CTRL_BYTES,
                                        dst: self.master.1,
                                        payload: Box::new(JobMsg::Failed {
                                            worker,
                                            fragment,
                                            size,
                                            error: error.to_string(),
                                        }),
                                    }),
                                );
                            }
                        }
                    }
                }
            }
            Ev::CpuDone(done) => {
                if done.tag != self.gen {
                    return; // compute for an aborted fragment
                }
                self.cpu_pending = self.cpu_pending.saturating_sub(1);
                if self.cpu_pending > 0 {
                    return;
                }
                let Some((_, size)) = self.fragment else {
                    return;
                };
                if let Some(len) = self.buffered.pop_front() {
                    self.start_compute(ctx, len);
                } else if self.offset < size {
                    // Idle: the pipeline puts out at least one read.
                    self.fill_pipeline(ctx);
                } else if self.inflight == 0 {
                    self.issue_write_or_finish(ctx);
                }
                // else: the tail chunks are still in flight; the next
                // ReadDone restarts the scan.
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

struct SimMaster {
    fragments: Vec<(u32, u64)>, // (id, size), unassigned
    outstanding: u32,
    workers: Vec<(u32, CompId)>, // (node, comp)
    net: CompId,
    node: u32,
    started: Option<SimTime>,
    finished: Option<SimTime>,
    /// Failed deliveries per fragment (abort-and-reassign bookkeeping).
    fail_counts: std::collections::HashMap<u32, u32>,
    /// Reassignments of a failed fragment before the job aborts.
    max_fragment_attempts: u32,
    error: Option<String>,
    name: String,
}

impl SimMaster {
    fn assign(&mut self, ctx: &mut Ctx<'_, Ev>, worker_idx: u32) {
        if let Some((fragment, size)) = self.fragments.pop() {
            self.outstanding += 1;
            let (wnode, wcomp) = self.workers[worker_idx as usize];
            ctx.send(
                self.net,
                Ev::Net(NetSend {
                    src_node: self.node,
                    dst_node: wnode,
                    bytes: CTRL_BYTES,
                    dst: wcomp,
                    payload: Box::new(JobMsg::Assign { fragment, size }),
                }),
            );
        } else if self.outstanding == 0 && self.finished.is_none() {
            self.finished = Some(ctx.now());
        }
    }
}

impl Component<Ev> for SimMaster {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Timer(_) => {
                self.started = Some(ctx.now());
                for w in 0..self.workers.len() as u32 {
                    self.assign(ctx, w);
                }
            }
            Ev::User(env) => {
                let msg: JobMsg = env.expect();
                match msg {
                    JobMsg::Done { worker } => {
                        self.outstanding -= 1;
                        self.assign(ctx, worker);
                        if self.fragments.is_empty()
                            && self.outstanding == 0
                            && self.finished.is_none()
                        {
                            self.finished = Some(ctx.now());
                        }
                    }
                    JobMsg::Failed {
                        worker,
                        fragment,
                        size,
                        error,
                    } => {
                        self.outstanding -= 1;
                        let n = self.fail_counts.entry(fragment).or_insert(0);
                        *n += 1;
                        if *n >= self.max_fragment_attempts {
                            // Every reassignment died the same way: the
                            // file system has lost data. Abort the job
                            // with a reported error (what the paper's
                            // PVFS cannot avoid after a server crash).
                            if self.finished.is_none() {
                                self.error = Some(error);
                                self.finished = Some(ctx.now());
                            }
                        } else {
                            self.fragments.push((fragment, size));
                            self.assign(ctx, worker);
                        }
                    }
                    JobMsg::Assign { .. } => {}
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Run one simulated parallel BLAST job.
pub fn run_simblast(cfg: &SimBlastConfig) -> SimOutcome {
    let mut eng: Engine<Ev> = Engine::new(cfg.seed);
    if cfg.capture_trace {
        eng.enable_trace();
    }
    let cluster = Cluster::build(&mut eng, cfg.nodes, cfg.hw.clone());

    // Fragment sizes: equal split of the database.
    let frag_size = cfg.db_bytes / cfg.fragments as u64;
    let fragments: Vec<(u32, u64)> = (0..cfg.fragments).map(|f| (f, frag_size)).collect();

    // Client retry policy: disabled for fault-free runs (the faithful
    // retry-free protocols), the default policy once faults are scheduled,
    // unless overridden explicitly.
    let retry = cfg.retry.unwrap_or_else(|| {
        if cfg.faults.is_empty() {
            RetryPolicy::disabled()
        } else {
            RetryPolicy::default()
        }
    });

    // Fault injector (installed only when there is something to inject, so
    // fault-free runs are event-for-event identical to before).
    let mut injector = (!cfg.faults.is_empty()).then(|| FaultInjector::new(cfg.faults.clone()));

    // Deploy the I/O scheme and create one client per worker node.
    let mut ceft_clients: Vec<CompId> = Vec::new();
    let mut pvfs_clients: Vec<CompId> = Vec::new();
    let mut ceft_meta: Option<CompId> = None;
    let mut iod_ids: Vec<CompId> = Vec::new();
    let clients: Vec<CompId> = match &cfg.scheme {
        SimScheme::Original => (0..cfg.workers)
            .map(|w| {
                let node = &cluster.nodes[w as usize];
                eng.add(LocalClient::new(format!("localclient{w}"), node.fs))
            })
            .collect(),
        SimScheme::Pvfs { servers } => {
            let pvfs = Pvfs::deploy(&mut eng, &cluster, cfg.master_node, servers, 64 << 10);
            for &(f, size) in &fragments {
                pvfs.register_file(&mut eng, FRAG_FILE_BASE + f as u64, size);
            }
            iod_ids = pvfs.iods.iter().map(|&(_, id)| id).collect();
            if let Some(inj) = injector.as_mut() {
                for (i, &(_, iod)) in pvfs.iods.iter().enumerate() {
                    inj.register_server(i, vec![iod]);
                }
            }
            let v: Vec<CompId> = (0..cfg.workers)
                .map(|w| {
                    let c = pvfs.add_client(&mut eng, w);
                    eng.component_mut::<PvfsClient>(c).set_retry(retry);
                    c
                })
                .collect();
            pvfs_clients = v.clone();
            v
        }
        SimScheme::Ceft { primary, mirror } => {
            let ceft = Ceft::deploy(
                &mut eng,
                &cluster,
                cfg.master_node,
                primary,
                mirror,
                &cfg.ceft,
            );
            ceft_meta = Some(ceft.meta.1);
            iod_ids = ceft
                .primary
                .iter()
                .chain(ceft.mirror.iter())
                .map(|&(_, id)| id)
                .collect();
            for &(f, size) in &fragments {
                ceft.register_file(&mut eng, FRAG_FILE_BASE + f as u64, size);
            }
            if let Some(inj) = injector.as_mut() {
                // Server indices: 0..N primary, N..2N mirror. A crash
                // takes out the iod and its load monitor together (both
                // live in the failed daemon's process).
                let n = ceft.primary.len();
                for (i, &(_, iod)) in ceft.primary.iter().enumerate() {
                    inj.register_server(i, vec![iod, ceft.monitors[i]]);
                }
                for (i, &(_, iod)) in ceft.mirror.iter().enumerate() {
                    inj.register_server(n + i, vec![iod, ceft.monitors[n + i]]);
                }
            }
            let v: Vec<CompId> = (0..cfg.workers)
                .map(|w| {
                    let c = ceft.add_client(&mut eng, w);
                    eng.component_mut::<CeftClient>(c).set_retry(retry);
                    c
                })
                .collect();
            ceft_clients = v.clone();
            v
        }
    };

    if let Some(mut inj) = injector.take() {
        for (n, node) in cluster.nodes.iter().enumerate() {
            inj.register_disk(n as u32, node.disk);
        }
        inj.register_net(cluster.net);
        inj.install(&mut eng);
    }

    // Workers.
    let worker_ids: Vec<(u32, CompId)> = (0..cfg.workers)
        .map(|w| {
            let node = &cluster.nodes[w as usize];
            let comp = eng.add(SimWorker {
                index: w,
                node: w,
                client: clients[w as usize],
                cpu: node.cpu,
                master: (cfg.master_node, CompId::NONE), // fixed below
                net: cluster.net,
                chunk: cfg.chunk,
                search_rate: cfg.search_rate,
                compute_cv: cfg.compute_cv,
                result_writes: cfg.result_writes,
                result_write_bytes: cfg.result_write_bytes,
                batch: cfg.queries_per_pass.max(1),
                compute_factor: cfg.batch_compute_factor(),
                read_ahead: cfg.read_ahead,
                list_io: cfg.list_io,
                tracer: cfg.io_tracer.clone(),
                fragment: None,
                offset: 0,
                writes_left: 0,
                cpu_pending: 0,
                gen: 0,
                inflight: 0,
                list_chunks: Vec::new(),
                buffered: std::collections::VecDeque::new(),
                stats: WorkerStats::default(),
                name: format!("worker{w}"),
            });
            (w, comp)
        })
        .collect();

    // Master.
    let master = eng.add(SimMaster {
        fragments: fragments.clone(),
        outstanding: 0,
        workers: worker_ids.clone(),
        net: cluster.net,
        node: cfg.master_node,
        started: None,
        finished: None,
        fail_counts: std::collections::HashMap::new(),
        max_fragment_attempts: 3,
        error: None,
        name: "master".into(),
    });
    for &(_, wcomp) in &worker_ids {
        eng.component_mut::<SimWorker>(wcomp).master = (cfg.master_node, master);
    }

    // Stressors.
    for &n in &cfg.stress_nodes {
        let st = eng.add(DiskStressor::new(
            format!("stressor{n}"),
            cluster.nodes[n as usize].fs,
            StressorConfig::default(),
        ));
        start_stressor(&mut eng, st, SimTime::ZERO);
    }

    // Go. Background components (stressors, heartbeat monitors) never
    // drain the queue, so advance in slices and stop as soon as the master
    // reports completion.
    eng.schedule(SimTime::from_secs_f64(cfg.warmup_s), master, Ev::Timer(0));
    let mut horizon = cfg.warmup_s + 50.0;
    loop {
        eng.run_until(SimTime::from_secs_f64(horizon));
        if eng.component::<SimMaster>(master).finished.is_some() || horizon >= cfg.horizon_s {
            break;
        }
        horizon += 50.0;
    }

    // Harvest.
    let m = eng.component::<SimMaster>(master);
    let started = m.started.expect("job started");
    let error = m.error.clone();
    // No finish within the horizon = the job hung (a retry-free client
    // blocked on a dead server); report it instead of panicking.
    let finished = m.finished;
    let completed = finished.is_some() && error.is_none();
    let makespan_s = finished
        .unwrap_or_else(|| eng.now())
        .saturating_sub(started)
        .as_secs_f64();
    // Compute time: derive from per-worker bytes (the sampled factors are
    // already reflected in the makespan; for reporting we use the actual
    // busy accounting below).
    let mut per_worker = Vec::new();
    let mut io = 0.0;
    let mut bytes = 0u64;
    let batch_factor = cfg.batch_compute_factor();
    for &(_, wcomp) in &worker_ids {
        let w = eng.component::<SimWorker>(wcomp);
        let mut st = w.stats;
        st.compute_s = st.bytes_read as f64 * batch_factor / cfg.search_rate;
        per_worker.push(st);
        io += st.io_s;
        bytes += st.bytes_read;
    }
    let compute = bytes as f64 * batch_factor / cfg.search_rate;
    let io_fraction = if io + compute > 0.0 {
        io / (io + compute)
    } else {
        0.0
    };
    let skipped_parts = ceft_clients
        .iter()
        .map(|&c| {
            eng.component::<parblast_ceft::CeftClient>(c)
                .skipped_parts()
        })
        .sum();
    let mut retries = 0u64;
    let mut failovers = 0u64;
    let mut repaired_stripes = 0u64;
    for &c in &pvfs_clients {
        retries += eng.component::<PvfsClient>(c).retries();
    }
    let mut read_hist = parblast_simcore::LogHistogram::new();
    for &c in &ceft_clients {
        let cl = eng.component::<CeftClient>(c);
        retries += cl.retries();
        failovers += cl.failovers();
        repaired_stripes += cl.repaired_stripes();
        read_hist.merge(cl.read_latency_hist());
    }
    let resyncs = ceft_meta
        .map(|m| eng.component::<parblast_ceft::CeftMeta>(m).resync_stats().0)
        .unwrap_or(0);
    let mut server_reads = 0u64;
    let mut server_list_reads = 0u64;
    let mut server_list_regions = 0u64;
    for &id in &iod_ids {
        let iod = eng.component::<Iod>(id);
        server_reads += iod.stats().0;
        let (lr, lrg) = iod.list_stats();
        server_list_reads += lr;
        server_list_regions += lrg;
    }
    let trace = eng.take_trace();
    SimOutcome {
        makespan_s,
        per_worker,
        io_fraction,
        skipped_parts,
        completed,
        error,
        retries,
        failovers,
        repaired_stripes,
        resyncs,
        read_latency_us: read_hist.percentiles(),
        trace,
        server_reads,
        server_list_reads,
        server_list_regions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shrink the database so tests stay fast while keeping the shape.
    fn small(scheme: SimScheme, workers: u32, nodes: usize) -> SimBlastConfig {
        SimBlastConfig {
            nodes,
            workers,
            fragments: workers,
            db_bytes: 256 << 20,
            scheme,
            master_node: (nodes - 1) as u32,
            warmup_s: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn original_scheme_completes_and_accounts() {
        let cfg = small(SimScheme::Original, 2, 3);
        let out = run_simblast(&cfg);
        assert!(out.makespan_s > 0.0);
        let total_bytes: u64 = out.per_worker.iter().map(|w| w.bytes_read).sum();
        assert_eq!(total_bytes, cfg.db_bytes / 2 * 2);
        // I/O fraction near the paper's ~11 %.
        assert!(
            out.io_fraction > 0.06 && out.io_fraction < 0.2,
            "io_fraction = {}",
            out.io_fraction
        );
    }

    #[test]
    fn batched_pass_amortizes_io_not_compute() {
        let mut cfg = small(SimScheme::Original, 2, 3);
        let t1 = run_simblast(&cfg).makespan_s;
        cfg.queries_per_pass = 4;
        let out4 = run_simblast(&cfg);
        // Same single database pass...
        let total_bytes: u64 = out4.per_worker.iter().map(|w| w.bytes_read).sum();
        assert_eq!(total_bytes, cfg.db_bytes / 2 * 2);
        // ...but 4 queries' worth of compute: longer than one query, far
        // shorter than four sequential passes.
        assert!(out4.makespan_s > t1 * 2.0, "t1={t1} t4={}", out4.makespan_s);
        assert!(out4.makespan_s < t1 * 4.0, "t1={t1} t4={}", out4.makespan_s);
        // I/O fraction shrinks when the scan is shared.
        assert!(out4.io_fraction < 0.06, "io_fraction={}", out4.io_fraction);
    }

    #[test]
    fn fused_kernel_amortizes_compute_sublinearly() {
        let mut cfg = small(SimScheme::Original, 2, 3);
        let t1 = run_simblast(&cfg).makespan_s;
        cfg.queries_per_pass = 4;
        let per_query = run_simblast(&cfg);
        cfg.fused_kernel = true;
        let fused = run_simblast(&cfg);
        // Identical workload: same single shared database pass.
        let bytes = |o: &SimOutcome| o.per_worker.iter().map(|w| w.bytes_read).sum::<u64>();
        assert_eq!(bytes(&fused), bytes(&per_query));
        // Fused compute factor at b=4 is 4 - 3*FUSED_SCAN_FRAC ≈ 1.66, so
        // the batch finishes well under the per-query kernel's makespan
        // and under 2x a single-query run.
        assert!(
            fused.makespan_s < per_query.makespan_s * 0.6,
            "fused={} per_query={}",
            fused.makespan_s,
            per_query.makespan_s
        );
        assert!(
            fused.makespan_s < t1 * 2.0,
            "t1={t1} fused={}",
            fused.makespan_s
        );
        // b=1 is exactly the per-query model: fused changes nothing.
        cfg.queries_per_pass = 1;
        let f1 = run_simblast(&cfg).makespan_s;
        assert!((f1 - t1).abs() < 1e-9, "t1={t1} f1={f1}");
    }

    #[test]
    fn sim_io_trace_is_deterministic_and_read_dominated() {
        let run = || {
            let mut cfg = small(SimScheme::Original, 2, 3);
            cfg.io_tracer = Some(Tracer::simulated());
            run_simblast(&cfg);
            cfg.io_tracer.unwrap().events()
        };
        let (a, b) = (run(), run());
        assert!(!a.is_empty());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "sim trace diverged");
        let s = crate::trace::TraceSummary::from_events(&a);
        assert!(s.read_fraction > 0.7, "{s:?}");
        assert_eq!(s.write_max, 690);
        // Timestamps are simulation time: monotone, starting after warmup.
        assert!(a[0].t >= 1.0, "first event at {}", a[0].t);
    }

    #[test]
    fn read_ahead_hides_io_without_changing_the_workload() {
        // Double-buffering the chunk reads must shave the I/O wait off
        // the makespan while reading exactly the same bytes.
        let mut cfg = small(
            SimScheme::Pvfs {
                servers: vec![0, 1],
            },
            2,
            3,
        );
        let sync = run_simblast(&cfg);
        cfg.read_ahead = 1;
        let ahead = run_simblast(&cfg);
        assert!(sync.completed && ahead.completed);
        let bytes = |o: &SimOutcome| o.per_worker.iter().map(|w| w.bytes_read).sum::<u64>();
        assert_eq!(bytes(&sync), bytes(&ahead), "read-ahead must not re-read");
        assert!(
            ahead.makespan_s < sync.makespan_s,
            "read-ahead must shorten the run: {} vs {}",
            ahead.makespan_s,
            sync.makespan_s
        );
        // The win is bounded by the I/O it can hide.
        assert!(
            ahead.makespan_s > sync.makespan_s * (1.0 - sync.io_fraction - 0.05),
            "win exceeds the hideable I/O: {} vs {} (io {})",
            ahead.makespan_s,
            sync.makespan_s,
            sync.io_fraction
        );
    }

    #[test]
    fn read_ahead_saturates_at_one_chunk() {
        // One chunk of look-ahead hides a compute-bound run's I/O;
        // deeper pipelines only queue reads at the disk (the burst
        // delays first-chunk delivery at each fragment start) and win
        // nothing further. Variability off: different depths sample the
        // per-chunk factors in different orders, which would otherwise
        // drown the comparison in noise.
        let mut cfg = small(SimScheme::Original, 2, 3);
        cfg.compute_cv = 0.0;
        let d0 = run_simblast(&cfg).makespan_s;
        cfg.read_ahead = 1;
        let d1 = run_simblast(&cfg).makespan_s;
        cfg.read_ahead = 4;
        let d4 = run_simblast(&cfg).makespan_s;
        assert!(d1 < d0, "depth 1 ({d1}) must beat sync ({d0})");
        assert!(d4 < d0, "depth 4 ({d4}) must still beat sync ({d0})");
        assert!(
            d1 <= d4,
            "deeper than one chunk must not win more: d1 {d1} vs d4 {d4}"
        );
    }

    #[test]
    fn read_ahead_survives_ceft_crash_with_prefetch_in_flight() {
        // A primary dies while prefetched chunk reads are in flight: the
        // stale replies are dropped, the client fails over to the mirror,
        // and the job still completes with every byte searched.
        let scheme = SimScheme::Ceft {
            primary: vec![0, 1],
            mirror: vec![2, 3],
        };
        let mut cfg = small(scheme, 4, 5);
        cfg.read_ahead = 2;
        let clean = run_simblast(&cfg);
        assert!(clean.completed);
        cfg.faults = FaultSchedule::new().crash_server(SimTime::from_secs_f64(3.0), 1);
        let out = run_simblast(&cfg);
        assert!(
            out.completed,
            "CEFT with read-ahead must survive the crash: {:?}",
            out.error
        );
        assert!(out.failovers > 0, "reads must have failed over");
        let bytes = |o: &SimOutcome| o.per_worker.iter().map(|w| w.bytes_read).sum::<u64>();
        // Aborted prefetches may re-read a fragment's chunks, never lose
        // them: the degraded run reads at least the clean run's bytes.
        assert!(bytes(&out) >= bytes(&clean));
    }

    #[test]
    fn pvfs_faster_than_original_at_two_nodes() {
        let t_orig = run_simblast(&small(SimScheme::Original, 2, 3)).makespan_s;
        let t_pvfs = run_simblast(&small(
            SimScheme::Pvfs {
                servers: vec![0, 1],
            },
            2,
            3,
        ))
        .makespan_s;
        assert!(
            t_pvfs < t_orig,
            "PVFS ({t_pvfs}) should beat original ({t_orig}) at 2 nodes"
        );
    }

    #[test]
    fn pvfs_slower_than_original_at_one_node() {
        let t_orig = run_simblast(&small(SimScheme::Original, 1, 2)).makespan_s;
        let t_pvfs = run_simblast(&small(SimScheme::Pvfs { servers: vec![0] }, 1, 2)).makespan_s;
        assert!(
            t_pvfs > t_orig,
            "PVFS ({t_pvfs}) should lose to original ({t_orig}) at 1 node"
        );
    }

    #[test]
    fn ceft_close_to_pvfs_unstressed() {
        let t_pvfs = run_simblast(&small(
            SimScheme::Pvfs {
                servers: vec![0, 1, 2, 3],
            },
            4,
            5,
        ))
        .makespan_s;
        let t_ceft = run_simblast(&small(
            SimScheme::Ceft {
                primary: vec![0, 1],
                mirror: vec![2, 3],
            },
            4,
            5,
        ))
        .makespan_s;
        let ratio = t_ceft / t_pvfs;
        assert!(
            ratio > 0.9 && ratio < 1.3,
            "CEFT/PVFS ratio = {ratio} (pvfs {t_pvfs}, ceft {t_ceft})"
        );
    }

    #[test]
    fn ceft_read_repair_survives_latent_corruption() {
        // A latent media error flips a stripe on each primary before the
        // search starts. Checksum verification catches it at read time,
        // the client rewrites the bad copy from the mirror's good one,
        // and the search completes over every byte.
        let scheme = SimScheme::Ceft {
            primary: vec![0, 1],
            mirror: vec![2, 3],
        };
        let mut cfg = small(scheme, 4, 5);
        let clean = run_simblast(&cfg);
        assert!(clean.completed);
        cfg.faults = FaultSchedule::new()
            .corrupt_stripe(SimTime::from_secs_f64(0.5), 0, FRAG_FILE_BASE, 0)
            .corrupt_stripe(SimTime::from_secs_f64(0.5), 1, FRAG_FILE_BASE + 1, 2);
        let out = run_simblast(&cfg);
        assert!(
            out.completed,
            "CEFT must survive latent corruption: {:?}",
            out.error
        );
        assert!(
            out.repaired_stripes >= 2,
            "read-repair must rewrite the bad copies: {}",
            out.repaired_stripes
        );
        // Corruption costs a partner re-fetch, never a lost byte: the
        // degraded run searches at least the clean run's bytes.
        let bytes = |o: &SimOutcome| o.per_worker.iter().map(|w| w.bytes_read).sum::<u64>();
        assert!(bytes(&out) >= bytes(&clean));
    }

    #[test]
    fn ceft_corruption_of_both_replicas_is_unrecoverable() {
        // The same stripe rots on a primary AND its mirror partner: no
        // good copy remains, so the read must surface the typed corrupt
        // error instead of retrying forever.
        let scheme = SimScheme::Ceft {
            primary: vec![0, 1],
            mirror: vec![2, 3],
        };
        let mut cfg = small(scheme, 4, 5);
        cfg.faults = FaultSchedule::new()
            .corrupt_stripe(SimTime::from_secs_f64(0.5), 0, FRAG_FILE_BASE, 0)
            .corrupt_stripe(SimTime::from_secs_f64(0.5), 2, FRAG_FILE_BASE, 0);
        let out = run_simblast(&cfg);
        assert!(!out.completed, "double corruption cannot be repaired");
        let err = out.error.expect("an error must be reported");
        assert!(err.contains("corruption"), "unexpected error: {err}");
    }

    #[test]
    fn pvfs_corruption_aborts_with_typed_error() {
        // PVFS has no replica to repair from: a corrupt stripe fails the
        // read with the non-retryable error and the job aborts after the
        // master exhausts fragment reassignment.
        let mut cfg = small(
            SimScheme::Pvfs {
                servers: vec![0, 1],
            },
            2,
            3,
        );
        cfg.faults =
            FaultSchedule::new().corrupt_stripe(SimTime::from_secs_f64(0.5), 0, FRAG_FILE_BASE, 0);
        let out = run_simblast(&cfg);
        assert!(!out.completed, "PVFS cannot mask corruption");
        let err = out.error.expect("an error must be reported");
        assert!(err.contains("corruption"), "unexpected error: {err}");
        // The error is deterministic: no retry or backoff budget burned.
        assert_eq!(out.retries, 0, "corruption must not spend retries");
    }

    #[test]
    fn ceft_revive_resyncs_before_rejoining() {
        // Crash a primary mid-search, revive it later with online resync
        // enabled: the metadata server rebuilds the stale copy from the
        // mirror partner and only then lets reads land on it again.
        let scheme = SimScheme::Ceft {
            primary: vec![0, 1],
            mirror: vec![2, 3],
        };
        let mut cfg = small(scheme, 4, 5);
        cfg.ceft.resync_rate = Some(256 << 20);
        // Fast heartbeat so the metadata server's dead sweep (2.5 beats of
        // grace) notices the crash well before the revival.
        cfg.ceft.heartbeat = SimTime::from_secs(1);
        cfg.faults = FaultSchedule::new()
            .crash_server(SimTime::from_secs_f64(3.0), 1)
            .revive_server(SimTime::from_secs_f64(8.0), 1);
        let out = run_simblast(&cfg);
        assert!(
            out.completed,
            "CEFT must survive crash + revive: {:?}",
            out.error
        );
        assert!(out.failovers > 0, "reads must have failed over");
        assert_eq!(out.resyncs, 1, "the revived server must be rebuilt");
    }

    #[test]
    fn stress_degrades_pvfs_more_than_ceft() {
        let mut pvfs = small(
            SimScheme::Pvfs {
                servers: vec![0, 1, 2, 3],
            },
            4,
            5,
        );
        let base_pvfs = run_simblast(&pvfs).makespan_s;
        pvfs.stress_nodes = vec![1];
        let hot_pvfs = run_simblast(&pvfs).makespan_s;

        let mut ceft = small(
            SimScheme::Ceft {
                primary: vec![0, 1],
                mirror: vec![2, 3],
            },
            4,
            5,
        );
        ceft.warmup_s = 10.0;
        let base_ceft = run_simblast(&ceft).makespan_s;
        ceft.stress_nodes = vec![1];
        let out_hot = run_simblast(&ceft);
        let hot_ceft = out_hot.makespan_s;

        let deg_pvfs = hot_pvfs / base_pvfs;
        let deg_ceft = hot_ceft / base_ceft;
        assert!(out_hot.skipped_parts > 0, "CEFT must skip the hot server");
        assert!(
            deg_pvfs > 2.0 * deg_ceft,
            "PVFS degradation {deg_pvfs} vs CEFT {deg_ceft}"
        );
        assert!(deg_ceft < 4.0, "CEFT degradation too high: {deg_ceft}");
    }
}
