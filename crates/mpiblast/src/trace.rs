//! Application-level I/O tracing (the instrumentation behind Figure 4).
//!
//! The paper instrumented the NCBI BLAST library to collect I/O traces at
//! the application level; we wrap every store access in a [`Tracer`] that
//! records `(time, kind, bytes)` triples and can summarize them exactly the
//! way §4.2 reports: operation counts, read/write mix, and size
//! distributions (13 B – 220 MB reads with a ~10 MB mean in the original).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parblast_simcore::SimTime;
use parking_lot::Mutex;

/// Operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
}

/// One traced operation.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Seconds since trace start.
    pub t: f64,
    /// Read or write.
    pub kind: IoKind,
    /// Bytes transferred.
    pub bytes: u64,
    /// Worker that performed the operation.
    pub worker: u32,
}

/// Shared collector of trace events.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

/// Where a tracer's timestamps come from.
enum Clock {
    /// Wall-clock seconds since the tracer was created (the real runner).
    Wall(Instant),
    /// Simulated nanoseconds, advanced explicitly via
    /// [`Tracer::advance_to`] — traces taken inside the simulator are a
    /// pure function of the run and byte-identical across repeats.
    Sim(AtomicU64),
}

struct Inner {
    clock: Clock,
    events: Mutex<Vec<TraceEvent>>,
    enabled: bool,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.enabled)
            .field(
                "clock",
                &match self.inner.clock {
                    Clock::Wall(_) => "wall",
                    Clock::Sim(_) => "sim",
                },
            )
            .field("events", &self.inner.events.lock().len())
            .finish()
    }
}

impl Tracer {
    fn with(clock: Clock, enabled: bool) -> Self {
        Tracer {
            inner: Arc::new(Inner {
                clock,
                events: Mutex::new(Vec::new()),
                enabled,
            }),
        }
    }

    /// New enabled tracer timestamping from the wall clock.
    pub fn new() -> Self {
        Tracer::with(Clock::Wall(Instant::now()), true)
    }

    /// New enabled tracer timestamping from simulated time, starting at
    /// zero. Drive the clock with [`Tracer::advance_to`]; the resulting
    /// Figure-4-style trace is deterministic across runs.
    pub fn simulated() -> Self {
        Tracer::with(Clock::Sim(AtomicU64::new(0)), true)
    }

    /// A tracer that records nothing — the paper turned tracing off during
    /// timing measurements "to eliminate the influence of the trace
    /// collection facilities".
    pub fn disabled() -> Self {
        Tracer::with(Clock::Wall(Instant::now()), false)
    }

    /// Move a simulated clock to `now` (no-op for wall-clock tracers).
    pub fn advance_to(&self, now: SimTime) {
        if let Clock::Sim(ns) = &self.inner.clock {
            ns.store(now.as_nanos(), Ordering::Relaxed);
        }
    }

    /// Current trace timestamp, seconds.
    fn now_s(&self) -> f64 {
        match &self.inner.clock {
            Clock::Wall(t0) => t0.elapsed().as_secs_f64(),
            Clock::Sim(ns) => ns.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }

    /// Record one operation.
    pub fn record(&self, worker: u32, kind: IoKind, bytes: u64) {
        if !self.inner.enabled {
            return;
        }
        let t = self.now_s();
        self.inner.events.lock().push(TraceEvent {
            t,
            kind,
            bytes,
            worker,
        });
    }

    /// Snapshot of all events, in time order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut v = self.inner.events.lock().clone();
        v.sort_by(|a, b| a.t.total_cmp(&b.t));
        v
    }

    /// Summarize like §4.2.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary::from_events(&self.events())
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// Aggregate statistics of a trace (the §4.2 figures).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Total operations.
    pub ops: usize,
    /// Read operations.
    pub reads: usize,
    /// Write operations.
    pub writes: usize,
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
    /// Smallest read in bytes.
    pub read_min: u64,
    /// Largest read in bytes.
    pub read_max: u64,
    /// Mean read size in bytes.
    pub read_mean: f64,
    /// Smallest write in bytes.
    pub write_min: u64,
    /// Largest write in bytes.
    pub write_max: u64,
    /// Mean write size in bytes.
    pub write_mean: f64,
    /// Read-size tail percentiles (p50/p95/p99, bytes), from the
    /// log-histogram of read sizes.
    pub read_pct: parblast_simcore::Percentiles,
}

impl TraceSummary {
    /// Compute from events.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut s = TraceSummary {
            ops: events.len(),
            reads: 0,
            writes: 0,
            read_fraction: 0.0,
            read_min: u64::MAX,
            read_max: 0,
            read_mean: 0.0,
            write_min: u64::MAX,
            write_max: 0,
            write_mean: 0.0,
            read_pct: parblast_simcore::Percentiles::default(),
        };
        let mut rsum = 0u64;
        let mut wsum = 0u64;
        let mut read_sizes = parblast_simcore::LogHistogram::new();
        for e in events {
            match e.kind {
                IoKind::Read => {
                    s.reads += 1;
                    rsum += e.bytes;
                    s.read_min = s.read_min.min(e.bytes);
                    s.read_max = s.read_max.max(e.bytes);
                    read_sizes.record(e.bytes);
                }
                IoKind::Write => {
                    s.writes += 1;
                    wsum += e.bytes;
                    s.write_min = s.write_min.min(e.bytes);
                    s.write_max = s.write_max.max(e.bytes);
                }
            }
        }
        if s.reads > 0 {
            s.read_mean = rsum as f64 / s.reads as f64;
        } else {
            s.read_min = 0;
        }
        if s.writes > 0 {
            s.write_mean = wsum as f64 / s.writes as f64;
        } else {
            s.write_min = 0;
        }
        if s.ops > 0 {
            s.read_fraction = s.reads as f64 / s.ops as f64;
        }
        s.read_pct = read_sizes.percentiles();
        s
    }

    /// Render the Figure 4 scatter data as TSV (`time_s  bytes  kind`).
    pub fn scatter_tsv(events: &[TraceEvent]) -> String {
        let mut out = String::from("time_s\tbytes\tkind\tworker\n");
        for e in events {
            out.push_str(&format!(
                "{:.6}\t{}\t{}\t{}\n",
                e.t,
                e.bytes,
                match e.kind {
                    IoKind::Read => "read",
                    IoKind::Write => "write",
                },
                e.worker
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let t = Tracer::new();
        t.record(0, IoKind::Read, 13);
        t.record(0, IoKind::Read, 220 << 20);
        t.record(1, IoKind::Write, 50);
        t.record(1, IoKind::Write, 778);
        let s = t.summary();
        assert_eq!(s.ops, 4);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 2);
        assert!((s.read_fraction - 0.5).abs() < 1e-12);
        assert_eq!(s.read_min, 13);
        assert_eq!(s.read_max, 220 << 20);
        assert_eq!(s.write_min, 50);
        assert_eq!(s.write_max, 778);
        assert!((s.write_mean - 414.0).abs() < 1e-9);
    }

    #[test]
    fn simulated_clock_timestamps_are_deterministic() {
        let run = || {
            let t = Tracer::simulated();
            t.advance_to(SimTime::from_millis(250));
            t.record(0, IoKind::Read, 8 << 20);
            t.advance_to(SimTime::from_secs(3));
            t.record(1, IoKind::Write, 690);
            t.events()
        };
        let (a, b) = (run(), run());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a[0].t, 0.25);
        assert_eq!(a[1].t, 3.0);
    }

    #[test]
    fn wall_tracer_ignores_advance_to() {
        let t = Tracer::new();
        t.advance_to(SimTime::from_secs(1000));
        t.record(0, IoKind::Read, 1);
        // Wall timestamps are elapsed-since-creation, far below 1000 s.
        assert!(t.events()[0].t < 100.0);
    }

    #[test]
    fn summary_reports_read_percentiles() {
        let t = Tracer::new();
        for _ in 0..99 {
            t.record(0, IoKind::Read, 8 << 20);
        }
        t.record(0, IoKind::Read, 13);
        let s = t.summary();
        assert!(s.read_pct.p50 > 1e6, "{:?}", s.read_pct);
        assert!(s.read_pct.p50 <= s.read_pct.p95);
        assert!(s.read_pct.p95 <= s.read_pct.p99);
        assert!(s.read_pct.p99 <= (8 << 20) as f64);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.record(0, IoKind::Read, 1000);
        assert_eq!(t.summary().ops, 0);
    }

    #[test]
    fn events_sorted_by_time() {
        let t = Tracer::new();
        for i in 0..50 {
            t.record(i % 4, IoKind::Read, i as u64 + 1);
        }
        let ev = t.events();
        for w in ev.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
    }

    #[test]
    fn scatter_tsv_format() {
        let ev = vec![TraceEvent {
            t: 1.5,
            kind: IoKind::Read,
            bytes: 42,
            worker: 3,
        }];
        let tsv = TraceSummary::scatter_tsv(&ev);
        assert!(tsv.starts_with("time_s\tbytes\tkind\tworker\n"));
        assert!(tsv.contains("1.500000\t42\tread\t3"));
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = TraceSummary::from_events(&[]);
        assert_eq!(s.ops, 0);
        assert_eq!(s.read_min, 0);
        assert_eq!(s.write_min, 0);
    }
}
