//! Parallel search over the three I/O schemes of the paper — for real.
//!
//! Formats a synthetic database into 8 fragments, loads them into each
//! of the three storage backends (local copy, PVFS-style striped,
//! CEFT-PVFS-style mirrored), runs the same 8-worker parallel blastn job
//! on each, and prints the Figure 4-style I/O trace statistics.
//!
//! ```sh
//! cargo run --release --example parallel_search
//! ```

use parblast::blast::DbStats;
use parblast::prelude::*;

fn main() -> std::io::Result<()> {
    let base = std::env::temp_dir().join(format!("parblast_example_{}", std::process::id()));
    std::fs::create_dir_all(&base)?;

    // Generate and segment the database (mpiformatdb's job).
    let mut gen = SyntheticNt::new(SyntheticConfig {
        total_residues: 4 << 20,
        seed: 42,
        ..Default::default()
    });
    let mut seqs = Vec::new();
    while let Some(s) = gen.next() {
        seqs.push(s);
    }
    let query = extract_query(&seqs[0].1, 568, 0.02, 1);
    let db = DbStats {
        residues: gen.residues(),
        nseq: gen.sequences(),
    };
    let infos = segment_into_fragments(&base.join("fmt"), "nt", SeqType::Nucleotide, 8, seqs)?;
    println!(
        "segmented into {} fragments of ~{} residues each",
        infos.len(),
        infos[0].residues
    );

    let schemes = [
        Scheme::local_at(&base.join("local"), 8)?,
        Scheme::pvfs_at(&base.join("pvfs"), 8, 64 << 10)?,
        Scheme::ceft_at(&base.join("ceft"), 4, 64 << 10)?,
    ];

    for scheme in schemes {
        let mut fragments = Vec::new();
        for info in &infos {
            let bytes = std::fs::read(&info.path)?;
            let name = info
                .path
                .file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned();
            scheme.load_fragment(&name, &bytes)?;
            fragments.push(name);
        }
        let tracer = Tracer::new();
        let name = scheme.name();
        let job = ParallelBlast {
            program: Program::Blastn,
            params: SearchParams::blastn(),
            db,
            fragments,
            workers: 8,
            scheme,
            tracer: tracer.clone(),
            parallelization: Parallelization::DatabaseSegmentation,
            prefetch: true,
            list_io: false,
        };
        let out = job.run(&query)?;
        let s = tracer.summary();
        println!(
            "\n[{name}] wall {:.2}s (copy {:.2}s) — {} hits, best E {:.1e}",
            out.wall_s,
            out.copy_s,
            out.hits.len(),
            out.hits
                .first()
                .map(|h| h.best_evalue())
                .unwrap_or(f64::NAN),
        );
        println!(
            "  I/O trace: {} ops, {:.0}% reads, reads {}B..{:.1}MB (mean {:.2}MB), writes ≤{}B",
            s.ops,
            s.read_fraction * 100.0,
            s.read_min,
            s.read_max as f64 / 1e6,
            s.read_mean / 1e6,
            s.write_max,
        );
    }

    std::fs::remove_dir_all(&base).ok();
    Ok(())
}
