//! Hot-spot skipping on real files (§4.5 of the paper, Figure 3).
//!
//! Stores an object in a 4+4 mirrored store, injects a fault (a loaded
//! disk) on one primary server, and shows the health monitor detecting it
//! and subsequent reads skipping to the mirror partner — then proves the
//! redundancy claim by deleting the hot server's file outright.
//!
//! ```sh
//! cargo run --release --example hotspot_failover
//! ```

use parblast::prelude::*;
use std::path::PathBuf;
use std::time::Instant;

fn main() -> std::io::Result<()> {
    let base = std::env::temp_dir().join(format!("parblast_hotspot_{}", std::process::id()));
    let dirs = |g: &str| -> Vec<PathBuf> { (0..4).map(|i| base.join(format!("{g}{i}"))).collect() };
    let store = MirroredStore::new(dirs("primary"), dirs("mirror"), 64 << 10)?;

    let data: Vec<u8> = (0..8u32 << 20).map(|i| (i % 251) as u8).collect();
    store.put("nt.000.pdb", &data)?;
    println!("stored 8 MiB across 4 primary + 4 mirror directories (RAID-10)");

    // Baseline read: dual-half schedule, all 8 "servers" participate.
    let mut r = store.open("nt.000.pdb")?;
    let mut buf = vec![0u8; 1 << 20];
    let t0 = Instant::now();
    for i in 0..8u64 {
        r.read_at(i * (1 << 20), &mut buf)?;
    }
    println!(
        "clean read pass: {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Stress primary server 2: every read from it now takes an extra 40 ms
    // (the fault-injection stand-in for the paper's Figure 8 stressor).
    let hot = ServerId { group: 0, index: 2 };
    store.monitor().inject_fault(hot, 0.040);
    println!("\ninjected fault on primary server 2 (+40 ms per read)");

    let t1 = Instant::now();
    for i in 0..8u64 {
        r.read_at(i * (1 << 20), &mut buf)?;
    }
    println!(
        "stressed pass (monitor learning): {:.1} ms, skips = {:?}",
        t1.elapsed().as_secs_f64() * 1e3,
        store.monitor().skips()
    );
    assert!(
        store.monitor().skips().contains(&hot),
        "hot server detected"
    );

    // With the skip in place, reads avoid the hot server entirely.
    let t2 = Instant::now();
    for i in 0..8u64 {
        r.read_at(i * (1 << 20), &mut buf)?;
    }
    println!(
        "skipping pass: {:.1} ms (hot server avoided)",
        t2.elapsed().as_secs_f64() * 1e3
    );

    // The redundancy is real: destroy the hot server's file and re-read.
    std::fs::remove_file(base.join("primary2").join("nt.000.pdb"))?;
    let mut all = vec![0u8; data.len()];
    r.read_at(0, &mut all)?;
    assert_eq!(all, data);
    println!("\nhot server's file deleted — full object still reads correctly from the mirror");

    std::fs::remove_dir_all(&base).ok();
    Ok(())
}
