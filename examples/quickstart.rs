//! Quickstart: generate a synthetic nucleotide database, format it, and
//! run a blastn search for a query extracted from it — the single-node
//! version of the paper's workload.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parblast::prelude::*;

fn main() {
    // 1. Generate a small synthetic database with nt-like statistics
    //    (the paper uses NCBI's 2.7 GB `nt`; we scale down).
    let mut gen = SyntheticNt::new(SyntheticConfig {
        total_residues: 2 << 20, // 2 M residues ≈ 1/1300 of nt
        seed: 2003,
        ..Default::default()
    });
    let mut seqs = Vec::new();
    while let Some(s) = gen.next() {
        seqs.push(s);
    }
    println!(
        "database: {} sequences, {} residues",
        seqs.len(),
        seqs.iter().map(|(_, c)| c.len()).sum::<usize>()
    );

    // 2. Extract the paper's style of query: 568 nucleotides cut from a
    //    database sequence, with 2 % mutations.
    let query = extract_query(&seqs[10].1, 568, 0.02, 7);
    println!(
        "query: {} nt (2% mutated window of sequence 11)",
        query.len()
    );

    // 3. Build an in-memory volume and search it with blastn defaults
    //    (word size 11, +1/−3, gaps 5/2 — the 2003-era parameters).
    let volume = Volume {
        seq_type: SeqType::Nucleotide,
        sequences: seqs
            .into_iter()
            .map(|(defline, codes)| DbSequence { defline, codes })
            .collect(),
    };
    let params = SearchParams::blastn();
    let hits = blastall(Program::Blastn, &query, &volume, &params);

    // 4. Report, BLAST tabular style.
    println!("\ntop hits (qid sid %id len mm go qs qe ss se evalue bits):");
    let top: Vec<_> = hits.iter().take(5).cloned().collect();
    print!("{}", tabular("query_568nt", &top));
    assert!(!hits.is_empty(), "the planted query must be found");
    println!(
        "\n{} subject(s) matched; best E-value {:.2e}",
        hits.len(),
        hits[0].best_evalue()
    );
}
