//! Capacity planning with the calibrated cluster simulator: how many PVFS
//! data servers does a BLAST workload actually need? (The §4.3 diminishing
//! returns, as a what-if tool.)
//!
//! Sweeps server counts for an 8-worker job at two database scales and
//! prints where the knee of the curve sits — the diminishing-returns
//! insight the paper derives from Figure 6 and Amdahl's law.
//!
//! ```sh
//! cargo run --release --example cluster_capacity
//! ```

use parblast::prelude::*;

fn run(servers: u32, db_bytes: u64) -> SimOutcome {
    let nodes = 8usize.max(servers as usize) + 1;
    run_simblast(&SimBlastConfig {
        nodes,
        workers: 8,
        fragments: 8,
        db_bytes,
        scheme: SimScheme::Pvfs {
            servers: (0..servers).collect(),
        },
        master_node: (nodes - 1) as u32,
        ..Default::default()
    })
}

fn main() {
    println!("PVFS server-count sweep, 8 workers (calibrated 2003 cluster)\n");
    for (label, db) in [
        ("nt today (2.7 GB)", 2_700_000_000u64),
        (
            "nt x4 (10.8 GB — the paper's 'rapidly growing database' case)",
            10_800_000_000u64,
        ),
    ] {
        println!("database: {label}");
        println!(
            "{:>8}  {:>10}  {:>12}  {:>8}",
            "servers", "time (s)", "io fraction", "speedup"
        );
        let mut base = None;
        for s in [1u32, 2, 4, 8, 12, 16] {
            let out = run(s, db);
            let b = *base.get_or_insert(out.makespan_s);
            println!(
                "{:>8}  {:>10.1}  {:>11.1}%  {:>7.2}x",
                s,
                out.makespan_s,
                out.io_fraction * 100.0,
                b / out.makespan_s
            );
        }
        println!();
    }
    println!("the curve flattens once computation dominates (Amdahl, §4.3):");
    println!("a handful of data servers already captures nearly all the I/O");
    println!("benefit for this compute-bound workload, at either scale.");
}
