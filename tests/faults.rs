//! Failure-scenario integration tests: a data server dies mid-search.
//!
//! Simulated path: the deterministic fault schedule crashes a server while
//! the parallel BLAST job is running. CEFT-PVFS must complete (reads fail
//! over to the mirror group), PVFS must *report* an I/O error rather than
//! hang, and the retry-free protocol's hang must itself be reported as a
//! non-completion instead of a panic.
//!
//! Real path: the same scenario expressed with actual files — a primary
//! directory loses its replicas and the mirrored store serves reads from
//! the partners, producing byte-identical BLAST hits.

use parblast::hwsim::FaultSchedule;
use parblast::mpiblast::{
    run_simblast, ParallelBlast, Parallelization, RunOutcome, Scheme, SimBlastConfig, SimScheme,
    Tracer,
};
use parblast::pvfs::RetryPolicy;
use parblast::simcore::SimTime;
use parblast_blast::{DbStats, Program, SearchParams};
use parblast_seqdb::blastdb::SeqType;
use parblast_seqdb::{extract_query, segment_into_fragments, SyntheticConfig, SyntheticNt};
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------- simulated

/// Small, fast job configuration (same shape as the paper's, scaled down).
fn sim(scheme: SimScheme) -> SimBlastConfig {
    SimBlastConfig {
        nodes: 5,
        workers: 4,
        fragments: 4,
        db_bytes: 64 << 20,
        scheme,
        master_node: 4,
        warmup_s: 1.0,
        horizon_s: 400.0,
        ..Default::default()
    }
}

fn crash_at_2s() -> FaultSchedule {
    // 1 s warmup + 2 s of searching: mid-job for this database size.
    FaultSchedule::new().crash_server(SimTime::from_secs_f64(3.0), 1)
}

#[test]
fn ceft_completes_after_primary_crash_mid_search() {
    let scheme = SimScheme::Ceft {
        primary: vec![0, 1],
        mirror: vec![2, 3],
    };
    let clean = run_simblast(&sim(scheme.clone()));
    assert!(clean.completed, "clean CEFT run must complete");

    let mut cfg = sim(scheme);
    cfg.faults = crash_at_2s();
    let out = run_simblast(&cfg);
    assert!(
        out.completed,
        "CEFT must survive a primary crash: error = {:?}",
        out.error
    );
    assert!(
        out.failovers > 0,
        "reads must have failed over to the mirror"
    );
    // Every byte of the database was still searched exactly once.
    let bytes: u64 = out.per_worker.iter().map(|w| w.bytes_read).sum();
    let clean_bytes: u64 = clean.per_worker.iter().map(|w| w.bytes_read).sum();
    assert_eq!(
        bytes, clean_bytes,
        "degraded run read a different byte count"
    );
    // Degraded, not free: slower than clean but far from the horizon.
    assert!(
        out.makespan_s > clean.makespan_s,
        "failover should cost time ({} vs {})",
        out.makespan_s,
        clean.makespan_s
    );
    assert!(out.makespan_s < 4.0 * clean.makespan_s + 60.0);
}

#[test]
fn pvfs_reports_io_error_after_server_crash() {
    let mut cfg = sim(SimScheme::Pvfs {
        servers: vec![0, 1, 2, 3],
    });
    cfg.faults = crash_at_2s();
    let out = run_simblast(&cfg);
    assert!(
        !out.completed,
        "unmirrored PVFS cannot survive a dead server"
    );
    let err = out.error.expect("the abort must carry the I/O error");
    assert!(
        err.contains("timed out"),
        "error should name the timeout: {err}"
    );
    assert!(
        out.retries > 0,
        "the client must have retried before giving up"
    );
}

#[test]
fn retry_free_pvfs_hangs_and_the_hang_is_reported() {
    // The faithful 2003 protocol has no timeouts: a dead server blocks the
    // client forever. The harness must report that as a non-completion
    // with no error, not panic or spin.
    let mut cfg = sim(SimScheme::Pvfs {
        servers: vec![0, 1, 2, 3],
    });
    cfg.faults = crash_at_2s();
    cfg.retry = Some(RetryPolicy::disabled());
    cfg.horizon_s = 120.0;
    let out = run_simblast(&cfg);
    assert!(!out.completed);
    assert!(out.error.is_none(), "a hang has no error to report");
    assert_eq!(out.retries, 0, "retry-free clients never retry");
    // Every worker blocks on the dead server's stripe: no fragment ever
    // completes.
    let frags: u32 = out.per_worker.iter().map(|w| w.fragments).sum();
    assert_eq!(frags, 0, "workers must be stuck mid-fragment");
}

#[test]
fn crash_before_revival_only_degrades_the_window() {
    // Crash at 3 s, revive at 8 s: the job must complete either way, and
    // the early revival must not cost more than the permanent crash.
    let scheme = SimScheme::Ceft {
        primary: vec![0, 1],
        mirror: vec![2, 3],
    };
    let mut dead_forever = sim(scheme.clone());
    dead_forever.faults = crash_at_2s();
    let t_dead = run_simblast(&dead_forever);

    let mut revived = sim(scheme);
    revived.faults = FaultSchedule::new()
        .crash_server(SimTime::from_secs_f64(3.0), 1)
        .revive_server(SimTime::from_secs_f64(8.0), 1);
    let t_rev = run_simblast(&revived);

    assert!(t_dead.completed && t_rev.completed);
    // Revival can only shrink the degraded window, never widen it beyond
    // event-scheduling noise.
    assert!(
        t_rev.makespan_s <= t_dead.makespan_s * 1.05,
        "revival must not be materially slower than staying dead ({} vs {})",
        t_rev.makespan_s,
        t_dead.makespan_s
    );
}

#[test]
fn sim_corruption_crash_and_revive_complete_on_ceft_across_seeds() {
    // The issue's acceptance scenario, pinned on three seeds: a latent
    // corrupt stripe plus a primary crash plus a later revival. CEFT must
    // repair the stripe from the mirror, fail reads over while the
    // primary is down, resync the revived server before it serves reads
    // again, and still read exactly the clean run's byte count.
    use parblast::mpiblast::FRAG_FILE_BASE;
    for seed in [42u64, 1003, 77] {
        let mut cfg = sim(SimScheme::Ceft {
            primary: vec![0, 1],
            mirror: vec![2, 3],
        });
        cfg.db_bytes = 256 << 20;
        cfg.seed = seed;
        // Fast heartbeat so the dead sweep (2.5-beat grace) notices the
        // crash before the revival; pace the rebuild fast enough to
        // finish within the job.
        cfg.ceft.heartbeat = SimTime::from_secs(1);
        cfg.ceft.resync_rate = Some(256 << 20);
        let clean = run_simblast(&cfg);
        assert!(clean.completed, "seed {seed}: clean run must complete");

        let mut faulted = cfg.clone();
        faulted.faults = FaultSchedule::new()
            .corrupt_stripe(SimTime::from_secs_f64(0.5), 0, FRAG_FILE_BASE, 0)
            .crash_server(SimTime::from_secs_f64(3.0), 1)
            .revive_server(SimTime::from_secs_f64(8.0), 1);
        let out = run_simblast(&faulted);
        assert!(
            out.completed,
            "seed {seed}: CEFT must survive corruption + crash + revive: {:?}",
            out.error
        );
        assert!(
            out.repaired_stripes >= 1,
            "seed {seed}: the corrupt stripe must be read-repaired"
        );
        assert!(out.failovers > 0, "seed {seed}: reads must fail over");
        assert_eq!(
            out.resyncs, 1,
            "seed {seed}: the revived server must be rebuilt exactly once"
        );
        let bytes: u64 = out.per_worker.iter().map(|w| w.bytes_read).sum();
        let clean_bytes: u64 = clean.per_worker.iter().map(|w| w.bytes_read).sum();
        assert_eq!(
            bytes, clean_bytes,
            "seed {seed}: degraded run read a different byte count"
        );
    }
}

#[test]
fn sim_pvfs_corruption_reports_typed_error_across_seeds() {
    // Unmirrored PVFS has no good copy to repair from: the same latent
    // corruption must surface as a *corruption* error (not a timeout) and
    // must never burn the retry budget — resending the read cannot fix a
    // bad disk block.
    use parblast::mpiblast::FRAG_FILE_BASE;
    for seed in [42u64, 1003, 77] {
        let mut cfg = sim(SimScheme::Pvfs {
            servers: vec![0, 1, 2, 3],
        });
        cfg.seed = seed;
        cfg.faults =
            FaultSchedule::new().corrupt_stripe(SimTime::from_secs_f64(0.5), 0, FRAG_FILE_BASE, 0);
        let out = run_simblast(&cfg);
        assert!(!out.completed, "seed {seed}: PVFS cannot mask corruption");
        let err = out.error.expect("the abort must carry the error");
        assert!(
            err.contains("corruption"),
            "seed {seed}: error must name corruption: {err}"
        );
        assert_eq!(out.retries, 0, "seed {seed}: corruption is non-retryable");
    }
}

// ------------------------------------------------------------ list I/O

#[test]
fn sim_ceft_list_io_crash_refetches_only_the_unserved_tail() {
    // A primary dies while a multi-batch ReadList is in flight. The CEFT
    // client must resend only `regions[served..]` to the mirror partner —
    // never the whole list — so the regions the partner serves are
    // strictly fewer than a full resend would cost.
    let scheme = SimScheme::Ceft {
        primary: vec![0, 1],
        mirror: vec![2, 3],
    };
    let mut cfg = sim(scheme);
    cfg.list_io = true;
    // 128 KiB chunks over 16 MiB fragments: 128 regions per list, 64 per
    // dual-half, i.e. two LIST_REGION_CAP batches per half — a crash can
    // land between batches.
    cfg.chunk = 128 << 10;
    let clean = run_simblast(&cfg);
    assert!(clean.completed, "clean list-I/O CEFT run must complete");
    assert!(clean.server_list_reads > 0, "lists must be in use");

    let mut faulted = cfg.clone();
    faulted.faults = FaultSchedule::new().crash_server(SimTime::from_secs_f64(1.5), 1);
    let out = run_simblast(&faulted);
    assert!(
        out.completed,
        "CEFT list I/O must survive a primary crash: {:?}",
        out.error
    );
    assert!(out.failovers > 0, "list tails must fail over to the mirror");
    let bytes: u64 = out.per_worker.iter().map(|w| w.bytes_read).sum();
    let clean_bytes: u64 = clean.per_worker.iter().map(|w| w.bytes_read).sum();
    assert_eq!(
        bytes, clean_bytes,
        "degraded run read a different byte count"
    );
    // Tail-only refetch, read off the servers' own accounting: an iod
    // counts a list's regions only when it FINISHES the list, so the dead
    // primary's in-flight lists are never counted and the partner counts
    // only the tail regions it was re-sent. A full-list resend would make
    // the partner re-count every region and bring the degraded total back
    // up to the clean total — the deficit below is exactly the batches the
    // dead server had already delivered and the client did not re-request.
    assert!(
        out.server_list_regions < clean.server_list_regions,
        "partner must be sent only the unserved tail ({} vs clean {})",
        out.server_list_regions,
        clean.server_list_regions
    );
    // The deficit is bounded by the dead server's share (~1/4 of regions).
    assert!(
        out.server_list_regions >= clean.server_list_regions * 3 / 4,
        "deficit larger than the dead server's own share ({} vs clean {})",
        out.server_list_regions,
        clean.server_list_regions
    );
}

#[test]
fn sim_pvfs_list_io_retry_budget_is_counted_per_list_request() {
    // With aggregation on, the retry budget applies to the one list
    // request a client has outstanding at the dead server — not to every
    // chunk it carries. Each worker burns at most `max_retries` retries
    // before aborting, however many regions the list held.
    let mut cfg = sim(SimScheme::Pvfs {
        servers: vec![0, 1, 2, 3],
    });
    cfg.list_io = true;
    cfg.chunk = 128 << 10; // 128 regions per fragment list
    cfg.faults = FaultSchedule::new().crash_server(SimTime::from_secs_f64(1.5), 1);
    let out = run_simblast(&cfg);
    assert!(
        !out.completed,
        "unmirrored PVFS cannot survive a dead server"
    );
    let err = out.error.expect("the abort must carry the I/O error");
    assert!(
        err.contains("timed out"),
        "error should name the timeout: {err}"
    );
    assert!(
        out.retries > 0,
        "the client must have retried before giving up"
    );
    // Each failed fragment attempt issues one list part at the dead
    // server and burns at most `max_retries` on it; the master re-assigns
    // each fragment up to 3 attempts. A per-region budget would spend
    // 128 × max_retries per attempt instead.
    let budget = RetryPolicy::default().max_retries as u64;
    let attempts = cfg.fragments as u64 * 3;
    assert!(
        out.retries <= budget * attempts,
        "retries must be budgeted per list request ({} > {budget} × \
         {attempts} fragment attempts); a per-region budget would burn \
         128 × {budget} per attempt",
        out.retries
    );
}

#[test]
fn sim_list_io_corruption_stays_non_retryable() {
    // Regression pin: aggregating reads into lists must not reclassify
    // corruption as retryable. A corrupt region fails the list with the
    // typed corruption error and burns zero retries — resending the same
    // list cannot fix a bad disk block.
    use parblast::mpiblast::FRAG_FILE_BASE;
    let mut cfg = sim(SimScheme::Pvfs {
        servers: vec![0, 1, 2, 3],
    });
    cfg.list_io = true;
    cfg.faults =
        FaultSchedule::new().corrupt_stripe(SimTime::from_secs_f64(0.5), 0, FRAG_FILE_BASE, 0);
    let out = run_simblast(&cfg);
    assert!(!out.completed, "PVFS cannot mask corruption");
    let err = out.error.expect("the abort must carry the error");
    assert!(
        err.contains("corruption"),
        "error must name corruption: {err}"
    );
    assert_eq!(out.retries, 0, "corruption is non-retryable under list I/O");
}

// -------------------------------------------------------------- real files

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("faults_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Synthetic database split into fragments and loaded into `scheme`.
fn setup(base: &Path, scheme: &Scheme) -> (Vec<String>, Vec<u8>, DbStats) {
    let mut g = SyntheticNt::new(SyntheticConfig {
        total_residues: 300_000,
        seed: 7,
        ..Default::default()
    });
    let mut seqs = vec![];
    while let Some(x) = g.next() {
        seqs.push(x);
    }
    let query = extract_query(&seqs[2].1, 500, 0.02, 5);
    let db = DbStats {
        residues: g.residues(),
        nseq: g.sequences(),
    };
    let infos =
        segment_into_fragments(&base.join("fmt"), "nt", SeqType::Nucleotide, 4, seqs).unwrap();
    let mut names = vec![];
    for info in infos {
        let bytes = std::fs::read(&info.path).unwrap();
        let name = info
            .path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        scheme.load_fragment(&name, &bytes).unwrap();
        names.push(name);
    }
    (names, query, db)
}

fn job(scheme: Scheme, fragments: Vec<String>, db: DbStats) -> ParallelBlast {
    ParallelBlast {
        program: Program::Blastn,
        params: SearchParams::blastn(),
        db,
        fragments,
        workers: 2,
        scheme,
        tracer: Tracer::disabled(),
        parallelization: Parallelization::DatabaseSegmentation,
        prefetch: false,
        list_io: false,
    }
}

fn hit_key(o: &RunOutcome) -> Vec<(String, i32)> {
    o.hits
        .iter()
        .map(|h| (h.subject_id.clone(), h.best_score()))
        .collect()
}

/// Remove every object file in one server directory ("the node died"),
/// leaving the directory itself so opens fail with NotFound.
fn kill_server_dir(dir: &Path) {
    for e in std::fs::read_dir(dir).unwrap() {
        std::fs::remove_file(e.unwrap().path()).unwrap();
    }
}

#[test]
fn real_ceft_yields_identical_hits_after_primary_loss() {
    let base = tmp("ceft");
    let ceft = Scheme::ceft_at(&base.join("c"), 2, 16 << 10).unwrap();
    let (fragments, query, db) = setup(&base, &ceft);
    let baseline = job(ceft.clone(), fragments.clone(), db)
        .run(&query)
        .unwrap();
    assert!(!baseline.hits.is_empty(), "planted query must be found");

    // Primary server 1 dies: its striped replicas vanish.
    kill_server_dir(&base.join("c").join("primary1"));
    let degraded = job(ceft, fragments, db).run(&query).unwrap();
    assert_eq!(
        hit_key(&baseline),
        hit_key(&degraded),
        "failover must not change BLAST results"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn real_ceft_completes_with_prefetch_in_flight_when_primary_dies() {
    // The double-buffered runner keeps fragment k+1's reads in flight
    // while fragment k is searched. Killing a primary under that pipeline
    // must behave exactly like the sequential path: in-flight and future
    // reads fail over to the mirror partner and the merged hits are
    // unchanged.
    let base = tmp("ceft_prefetch");
    let ceft = Scheme::ceft_at(&base.join("c"), 2, 16 << 10).unwrap();
    let (fragments, query, db) = setup(&base, &ceft);
    let mut baseline_job = job(ceft.clone(), fragments.clone(), db);
    baseline_job.prefetch = true;
    let baseline = baseline_job.run(&query).unwrap();
    assert!(!baseline.hits.is_empty(), "planted query must be found");

    // Primary server 1 dies between runs: every striped replica it held
    // is gone, so the prefetch pipeline's async reads hit the failure
    // mid-flight from the very first fragment onward. (Server 0 keeps the
    // `.meta` size files, so index 1 is the interesting data-loss case.)
    kill_server_dir(&base.join("c").join("primary1"));
    let mut degraded_job = job(ceft, fragments, db);
    degraded_job.prefetch = true;
    let degraded = degraded_job.run(&query).unwrap();
    assert_eq!(
        hit_key(&baseline),
        hit_key(&degraded),
        "failover under prefetch must not change BLAST results"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn sim_ceft_read_ahead_crash_completes_with_failovers() {
    // Simulated twin of the scenario above: a primary crashes while
    // read-ahead keeps prefetched chunk reads in flight. The stale
    // replies are dropped, the client reroutes to the mirror, and the
    // job completes.
    let mut cfg = sim(SimScheme::Ceft {
        primary: vec![0, 1],
        mirror: vec![2, 3],
    });
    cfg.read_ahead = 2;
    // Read-ahead drains each fragment's chunk reads early in the compute
    // phase, so the crash must land shortly after warmup (1 s) to catch
    // prefetched reads still in flight.
    cfg.faults = FaultSchedule::new().crash_server(SimTime::from_secs_f64(1.5), 1);
    let out = run_simblast(&cfg);
    assert!(
        out.completed,
        "CEFT with read-ahead must survive the crash: {:?}",
        out.error
    );
    assert!(out.failovers > 0, "reads must have failed over");
}

#[test]
fn real_revived_stale_server_is_excluded_until_resync_completes() {
    // A server that died and came back with stale bytes must never serve
    // a read until `resync_server` has rebuilt it from its mirror
    // partner: `revive()` is refused while Degraded/Rebuilding, reads
    // keep routing around it, and only a completed rebuild (which
    // rewrites the stale stripes) readmits it.
    use parblast::pio::{read_all, MirroredStore, ObjectStore, ResyncState, ServerId};
    let base = tmp("stale_revive");
    let p: Vec<PathBuf> = (0..2).map(|i| base.join(format!("p{i}"))).collect();
    let m: Vec<PathBuf> = (0..2).map(|i| base.join(format!("m{i}"))).collect();
    let store = MirroredStore::new(p, m, 16 << 10).unwrap();
    let data: Vec<u8> = (0..200_000u32).map(|i| (i * 13 % 251) as u8).collect();
    store.put("nt", &data).unwrap();

    // Primary 1 dies, then "comes back" holding garbage where its
    // stripes used to be — it missed every write since the crash.
    let victim = ServerId { group: 0, index: 1 };
    store.monitor().mark_dead(victim);
    let shard = base.join("p1").join("nt");
    let good_shard = std::fs::read(&shard).unwrap();
    std::fs::write(&shard, vec![0xAAu8; good_shard.len()]).unwrap();

    assert!(
        !store.monitor().revive(victim),
        "a stale server must not be readmitted by revival alone"
    );
    assert_eq!(store.monitor().resync_state(victim), ResyncState::Degraded);
    assert!(store.monitor().dead().contains(&victim));
    assert_eq!(
        read_all(&store, "nt").unwrap(),
        data,
        "reads must route around the stale replica"
    );

    // The rebuild copies the partner's good stripes back, after which —
    // and only after which — the server serves reads again.
    let report = store.resync_server(victim, 0).unwrap();
    assert!(report.bytes > 0, "{report:?}");
    assert_eq!(store.monitor().resync_state(victim), ResyncState::Healthy);
    assert!(store.monitor().dead().is_empty());
    assert_eq!(
        std::fs::read(&shard).unwrap(),
        good_shard,
        "the rebuild must rewrite the stale stripes"
    );
    assert_eq!(read_all(&store, "nt").unwrap(), data);
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn real_pvfs_reports_error_after_server_loss() {
    let base = tmp("pvfs");
    let pvfs = Scheme::pvfs_at(&base.join("p"), 4, 16 << 10).unwrap();
    let (fragments, query, db) = setup(&base, &pvfs);
    assert!(job(pvfs.clone(), fragments.clone(), db).run(&query).is_ok());

    // An unmirrored server dies: the job must fail cleanly — the master
    // reassigns each fragment MAX_TASK_ATTEMPTS times, every attempt hits
    // the same missing stripes, and the error surfaces.
    kill_server_dir(&base.join("p").join("iod0"));
    let err = job(pvfs, fragments, db).run(&query).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    std::fs::remove_dir_all(&base).ok();
}
