//! Protocol-conformance suite for the `ReadList` list-I/O wire format.
//!
//! Pins the frame layout byte-for-byte (golden vectors), the validation
//! rules a server applies before acting on a list, and the round-trip
//! property `decode(encode(x)) == x` over arbitrary well-formed lists.

use parblast::pvfs::{
    decode_read_list, encode_read_list, list_req_wire_bytes, validate_regions, ListFrameError,
    Region, LIST_MAGIC, LIST_REGION_CAP, LIST_VERSION,
};
use proptest::prelude::*;

/// The exact bytes of a two-region request frame, written out by hand.
/// If the wire format ever drifts — field order, widths, endianness —
/// this test names the first diverging byte.
#[test]
fn golden_two_region_frame() {
    let regions = [Region::new(0, 64 << 10), Region::new(64 << 10, 13)];
    let frame = encode_read_list(0x0102_0304_0506_0708, 42, 7, &regions).unwrap();

    let mut want = Vec::new();
    want.extend_from_slice(&[0x31, 0x4C, 0x56, 0x50]); // magic "1LVP" (LE of 0x50564C31)
    want.push(1); // version
    want.extend_from_slice(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]); // token
    want.extend_from_slice(&[42, 0, 0, 0, 0, 0, 0, 0]); // file
    want.extend_from_slice(&[7, 0, 0, 0, 0, 0, 0, 0]); // first
    want.extend_from_slice(&[2, 0, 0, 0]); // count
    want.extend_from_slice(&[0, 0, 0, 0, 0, 0, 0, 0]); // region 0 offset
    want.extend_from_slice(&[0x00, 0x00, 0x01, 0, 0, 0, 0, 0]); // region 0 len = 65536
    want.extend_from_slice(&[0x00, 0x00, 0x01, 0, 0, 0, 0, 0]); // region 1 offset = 65536
    want.extend_from_slice(&[13, 0, 0, 0, 0, 0, 0, 0]); // region 1 len

    assert_eq!(frame.len() as u64, list_req_wire_bytes(2));
    assert_eq!(frame, want);
}

#[test]
fn golden_single_region_frame_and_header_size() {
    let frame = encode_read_list(0, 0, 0, &[Region::new(1, 1)]).unwrap();
    assert_eq!(frame.len(), 33 + 16, "33-byte header plus one region");
    assert_eq!(
        u32::from_le_bytes(frame[0..4].try_into().unwrap()),
        LIST_MAGIC
    );
    assert_eq!(frame[4], LIST_VERSION);
    let (token, file, first, regions) = decode_read_list(&frame).unwrap();
    assert_eq!((token, file, first), (0, 0, 0));
    assert_eq!(regions, vec![Region::new(1, 1)]);
}

#[test]
fn wire_bytes_formula_matches_encoding() {
    for n in 1..LIST_REGION_CAP * 2 {
        let regions: Vec<Region> = (0..n).map(|i| Region::new(i as u64 * 10, 10)).collect();
        let frame = encode_read_list(9, 9, 0, &regions).unwrap();
        assert_eq!(frame.len() as u64, list_req_wire_bytes(n));
    }
}

#[test]
fn validation_rejects_malformed_lists() {
    assert_eq!(validate_regions(&[]), Err(ListFrameError::Empty));
    assert_eq!(
        validate_regions(&[Region::new(0, 8), Region::new(8, 0)]),
        Err(ListFrameError::ZeroLen(1))
    );
    assert_eq!(
        validate_regions(&[Region::new(100, 8), Region::new(0, 8)]),
        Err(ListFrameError::Unsorted(1))
    );
    assert_eq!(
        validate_regions(&[Region::new(0, 16), Region::new(8, 8)]),
        Err(ListFrameError::Overlap(1))
    );
    // Adjacent regions are legal: stripe boundaries may stay visible.
    assert_eq!(
        validate_regions(&[Region::new(0, 8), Region::new(8, 8)]),
        Ok(())
    );
    // Encoding applies the same gate — invalid lists never hit the wire.
    assert_eq!(
        encode_read_list(1, 1, 0, &[]).unwrap_err(),
        ListFrameError::Empty
    );
    assert_eq!(
        encode_read_list(1, 1, 0, &[Region::new(4, 4), Region::new(0, 4)]).unwrap_err(),
        ListFrameError::Unsorted(1)
    );
}

#[test]
fn decode_rejects_bad_magic_and_version() {
    let good = encode_read_list(5, 6, 0, &[Region::new(0, 4)]).unwrap();

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    assert_eq!(decode_read_list(&bad_magic), Err(ListFrameError::BadMagic));

    let mut bad_version = good.clone();
    bad_version[4] = 2;
    assert_eq!(
        decode_read_list(&bad_version),
        Err(ListFrameError::BadVersion(2))
    );
}

/// Chopping the frame at every possible prefix length must yield
/// `Truncated` (or `BadMagic`/`BadVersion` never — the prefix is intact),
/// and a frame with trailing garbage is also refused.
#[test]
fn decode_rejects_truncation_at_every_length_and_trailing_garbage() {
    let good = encode_read_list(77, 3, 1, &[Region::new(0, 32), Region::new(32, 32)]).unwrap();
    for cut in 0..good.len() {
        assert_eq!(
            decode_read_list(&good[..cut]),
            Err(ListFrameError::Truncated),
            "prefix of {cut} bytes must decode as truncated"
        );
    }
    let mut long = good.clone();
    long.push(0);
    assert_eq!(decode_read_list(&long), Err(ListFrameError::Truncated));
}

#[test]
fn decode_revalidates_regions() {
    // Hand-build a frame whose region list is overlapping: the decoder
    // must apply the same validation a fresh encode would.
    let mut frame = Vec::new();
    frame.extend_from_slice(&LIST_MAGIC.to_le_bytes());
    frame.push(LIST_VERSION);
    frame.extend_from_slice(&1u64.to_le_bytes()); // token
    frame.extend_from_slice(&2u64.to_le_bytes()); // file
    frame.extend_from_slice(&0u64.to_le_bytes()); // first
    frame.extend_from_slice(&2u32.to_le_bytes()); // count
    for (off, len) in [(0u64, 16u64), (8, 16)] {
        frame.extend_from_slice(&off.to_le_bytes());
        frame.extend_from_slice(&len.to_le_bytes());
    }
    assert_eq!(decode_read_list(&frame), Err(ListFrameError::Overlap(1)));
}

/// Strategy: a well-formed region list — sorted, non-overlapping,
/// no zero lengths — built by walking a cursor forward with random
/// gaps (gap 0 exercises the legal adjacent case). Gap and length are
/// unpacked from one random word per region.
fn region_list() -> impl Strategy<Value = Vec<Region>> {
    proptest::collection::vec(any::<u64>(), 1..48).prop_map(|words| {
        let mut at = 0u64;
        let mut out = Vec::with_capacity(words.len());
        for w in words {
            let gap = w % 64;
            let len = 1 + (w >> 8) % 1023;
            at += gap;
            out.push(Region::new(at, len));
            at += len;
        }
        out
    })
}

proptest! {
    #[test]
    fn encode_decode_round_trips(
        token in any::<u64>(),
        file in any::<u64>(),
        first in 0u64..1_000_000,
        regions in region_list(),
    ) {
        let frame = encode_read_list(token, file, first, &regions).unwrap();
        prop_assert_eq!(frame.len() as u64, list_req_wire_bytes(regions.len()));
        let (t, f, fi, rs) = decode_read_list(&frame).unwrap();
        prop_assert_eq!(t, token);
        prop_assert_eq!(f, file);
        prop_assert_eq!(fi, first);
        prop_assert_eq!(rs, regions);
    }

    #[test]
    fn every_generated_list_validates(regions in region_list()) {
        prop_assert_eq!(validate_regions(&regions), Ok(()));
    }
}
