//! Protocol-conformance and daemon-behavior suite for the `net` tier.
//!
//! The first half pins the frame wire format byte-for-byte — golden
//! vectors for every frame kind, rejection of every truncated prefix and
//! of trailing garbage, and the `decode(encode(x)) == x` round trip over
//! arbitrary frames — exactly the discipline `tests/listio.rs` applies to
//! the PVFS `ReadList` format. The second half drives a real daemon over
//! loopback TCP with the deterministic [`EchoRunner`]: concurrent
//! clients, every typed shed reason, cancellation, stats, and the
//! zero-result-loss graceful-drain contract.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use parblast::net::{
    decode_frame, encode_frame, ClientConfig, EchoRunner, Frame, FrameError, FrameReader,
    NetClient, NetServer, QuotaConfig, Response, ResultStatus, ServerConfig, ShedReason,
    StatsSnapshot, FRAME_HEADER_LEN, MAX_FRAME_LEN, NET_MAGIC, NET_VERSION,
};
use parblast::serve::Priority;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Golden wire vectors: if the format drifts — field order, widths,
// endianness — these name the first diverging byte.
// ---------------------------------------------------------------------

fn header(kind: u8, payload_len: u32) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&[0x50, 0x42, 0x4E, 0x31]); // magic "PBN1" (LE of 0x314E4250)
    out.push(1); // version
    out.push(kind);
    out.extend_from_slice(&payload_len.to_le_bytes());
    out
}

#[test]
fn golden_submit_frame() {
    let frame = encode_frame(&Frame::Submit {
        id: 0x0102_0304_0506_0708,
        tenant: 0x0A0B_0C0D,
        priority: Priority::Interactive,
        deadline_us: 1_000_000,
        query: vec![0xDE, 0xAD],
    });
    let mut want = header(1, 27);
    want.extend_from_slice(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]); // id
    want.extend_from_slice(&[0x0D, 0x0C, 0x0B, 0x0A]); // tenant
    want.push(0); // priority = Interactive
    want.extend_from_slice(&[0x40, 0x42, 0x0F, 0, 0, 0, 0, 0]); // deadline 1e6 us
    want.extend_from_slice(&[2, 0, 0, 0]); // query len
    want.extend_from_slice(&[0xDE, 0xAD]);
    assert_eq!(frame, want);
}

#[test]
fn golden_cancel_drain_stats_frames() {
    let mut want = header(2, 8);
    want.extend_from_slice(&[9, 0, 0, 0, 0, 0, 0, 0]);
    assert_eq!(encode_frame(&Frame::Cancel { id: 9 }), want);
    assert_eq!(encode_frame(&Frame::Drain), header(3, 0));
    assert_eq!(encode_frame(&Frame::Stats), header(4, 0));
}

#[test]
fn golden_result_frame() {
    let frame = encode_frame(&Frame::Result {
        id: 7,
        status: ResultStatus::Corrupt,
        payload: b"hit".to_vec(),
    });
    let mut want = header(5, 16);
    want.extend_from_slice(&[7, 0, 0, 0, 0, 0, 0, 0]); // id
    want.push(1); // status = Corrupt
    want.extend_from_slice(&[3, 0, 0, 0]); // payload len
    want.extend_from_slice(b"hit");
    assert_eq!(frame, want);
}

#[test]
fn golden_shed_frame() {
    let frame = encode_frame(&Frame::Shed {
        id: 8,
        reason: ShedReason::QuotaExceeded,
        retry_after_us: 20_000,
    });
    let mut want = header(6, 17);
    want.extend_from_slice(&[8, 0, 0, 0, 0, 0, 0, 0]); // id
    want.push(1); // reason = QuotaExceeded
    want.extend_from_slice(&[0x20, 0x4E, 0, 0, 0, 0, 0, 0]); // 20000 us
    assert_eq!(frame, want);
}

#[test]
fn golden_drain_ack_and_stats_reply_frames() {
    let mut want = header(7, 8);
    want.extend_from_slice(&[12, 0, 0, 0, 0, 0, 0, 0]);
    assert_eq!(encode_frame(&Frame::DrainAck { queued: 12 }), want);

    let snap = StatsSnapshot {
        accepted: 1,
        served: 2,
        shed_queue_full: 3,
        shed_quota: 4,
        shed_draining: 5,
        expired: 6,
        cancelled: 7,
        batches: 8,
        bytes_read: 9,
        kernel_passes: 10,
        passes_saved: 11,
        submits: 12,
        evicted: 13,
        per_shard_served: vec![10, 11],
    };
    let frame = encode_frame(&Frame::StatsReply(snap));
    let mut want = header(8, 13 * 8 + 4 + 2 * 8);
    for v in 1u64..=13 {
        want.extend_from_slice(&v.to_le_bytes());
    }
    want.extend_from_slice(&[2, 0, 0, 0]); // shard count
    want.extend_from_slice(&10u64.to_le_bytes());
    want.extend_from_slice(&11u64.to_le_bytes());
    assert_eq!(frame, want);
}

// ---------------------------------------------------------------------
// Rejection rules.
// ---------------------------------------------------------------------

#[test]
fn decode_rejects_bad_magic_version_kind_and_cap() {
    let good = encode_frame(&Frame::Cancel { id: 1 });

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    assert_eq!(decode_frame(&bad_magic), Err(FrameError::BadMagic));

    let mut bad_version = good.clone();
    bad_version[4] = NET_VERSION + 1;
    assert_eq!(
        decode_frame(&bad_version),
        Err(FrameError::BadVersion(NET_VERSION + 1))
    );

    let mut bad_kind = good.clone();
    bad_kind[5] = 0;
    assert_eq!(decode_frame(&bad_kind), Err(FrameError::BadKind(0)));
    bad_kind[5] = 9;
    assert_eq!(decode_frame(&bad_kind), Err(FrameError::BadKind(9)));

    let mut too_large = good.clone();
    too_large[6..10].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    assert_eq!(
        decode_frame(&too_large),
        Err(FrameError::TooLarge(MAX_FRAME_LEN + 1))
    );
}

#[test]
fn decode_rejects_out_of_domain_payload_bytes() {
    let mut bad_priority = encode_frame(&Frame::Submit {
        id: 1,
        tenant: 0,
        priority: Priority::Bulk,
        deadline_us: 0,
        query: vec![],
    });
    bad_priority[FRAME_HEADER_LEN + 12] = 3;
    assert_eq!(decode_frame(&bad_priority), Err(FrameError::BadPriority(3)));

    let mut bad_reason = encode_frame(&Frame::Shed {
        id: 1,
        reason: ShedReason::QueueFull,
        retry_after_us: 0,
    });
    bad_reason[FRAME_HEADER_LEN + 8] = 5;
    assert_eq!(decode_frame(&bad_reason), Err(FrameError::BadReason(5)));

    let mut bad_status = encode_frame(&Frame::Result {
        id: 1,
        status: ResultStatus::Ok,
        payload: vec![],
    });
    bad_status[FRAME_HEADER_LEN + 8] = 3;
    assert_eq!(decode_frame(&bad_status), Err(FrameError::BadStatus(3)));
}

/// Chopping a frame at every possible prefix length must decode as
/// `Truncated`, and so must a frame with trailing garbage.
#[test]
fn decode_rejects_truncation_at_every_length_and_trailing_garbage() {
    for frame in [
        Frame::Submit {
            id: 77,
            tenant: 3,
            priority: Priority::Normal,
            deadline_us: 5_000,
            query: vec![7; 33],
        },
        Frame::Result {
            id: 4,
            status: ResultStatus::Failed,
            payload: b"broken pipe".to_vec(),
        },
        Frame::Shed {
            id: 5,
            reason: ShedReason::Draining,
            retry_after_us: 1,
        },
        Frame::StatsReply(StatsSnapshot {
            per_shard_served: vec![1, 2, 3],
            ..Default::default()
        }),
    ] {
        let good = encode_frame(&frame);
        for cut in 0..good.len() {
            assert_eq!(
                decode_frame(&good[..cut]),
                Err(FrameError::Truncated),
                "{frame:?}: prefix of {cut} bytes must decode as truncated"
            );
        }
        let mut long = good.clone();
        long.push(0);
        assert_eq!(decode_frame(&long), Err(FrameError::Truncated));
    }
}

#[test]
fn magic_constant_is_pbn1() {
    assert_eq!(&NET_MAGIC.to_le_bytes(), b"PBN1");
}

// ---------------------------------------------------------------------
// Round-trip properties.
// ---------------------------------------------------------------------

fn arb_priority() -> impl Strategy<Value = Priority> {
    prop_oneof![
        Just(Priority::Interactive),
        Just(Priority::Normal),
        Just(Priority::Bulk)
    ]
}

fn arb_reason() -> impl Strategy<Value = ShedReason> {
    prop_oneof![
        Just(ShedReason::QueueFull),
        Just(ShedReason::QuotaExceeded),
        Just(ShedReason::Draining),
        Just(ShedReason::Expired),
        Just(ShedReason::Cancelled)
    ]
}

fn arb_status() -> impl Strategy<Value = ResultStatus> {
    prop_oneof![
        Just(ResultStatus::Ok),
        Just(ResultStatus::Corrupt),
        Just(ResultStatus::Failed)
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (
            any::<u64>(),
            any::<u32>(),
            arb_priority(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..200)
        )
            .prop_map(|(id, tenant, priority, deadline_us, query)| Frame::Submit {
                id,
                tenant,
                priority,
                deadline_us,
                query,
            }),
        any::<u64>().prop_map(|id| Frame::Cancel { id }),
        Just(Frame::Drain),
        Just(Frame::Stats),
        (
            any::<u64>(),
            arb_status(),
            proptest::collection::vec(any::<u8>(), 0..200)
        )
            .prop_map(|(id, status, payload)| Frame::Result {
                id,
                status,
                payload,
            }),
        (any::<u64>(), arb_reason(), any::<u64>()).prop_map(|(id, reason, retry_after_us)| {
            Frame::Shed {
                id,
                reason,
                retry_after_us,
            }
        }),
        any::<u64>().prop_map(|queued| Frame::DrainAck { queued }),
        (
            proptest::collection::vec(any::<u64>(), 13..14),
            proptest::collection::vec(any::<u64>(), 0..8)
        )
            .prop_map(|(v, per_shard_served)| {
                Frame::StatsReply(StatsSnapshot {
                    accepted: v[0],
                    served: v[1],
                    shed_queue_full: v[2],
                    shed_quota: v[3],
                    shed_draining: v[4],
                    expired: v[5],
                    cancelled: v[6],
                    batches: v[7],
                    bytes_read: v[8],
                    kernel_passes: v[9],
                    passes_saved: v[10],
                    submits: v[11],
                    evicted: v[12],
                    per_shard_served,
                })
            }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trips(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        prop_assert_eq!(decode_frame(&bytes), Ok(frame));
    }

    /// A stream of frames split at arbitrary chunk boundaries reassembles
    /// into exactly the same frames, in order, with nothing left over.
    #[test]
    fn stream_reader_reassembles_any_chunking(
        frames in proptest::collection::vec(arb_frame(), 1..8),
        chunk in 1usize..64,
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            reader.feed(piece);
            while let Some(f) = reader.next_frame().unwrap() {
                got.push(f);
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(reader.buffered(), 0);
    }
}

// ---------------------------------------------------------------------
// End-to-end daemon behavior over loopback TCP (EchoRunner: the
// deterministic executor, so these test scheduling, not search).
// ---------------------------------------------------------------------

fn echo_server(config: ServerConfig, delay: Duration) -> parblast::net::ServerHandle {
    NetServer::start(
        "127.0.0.1:0",
        config,
        Arc::new(EchoRunner::with_delay(delay)),
    )
    .expect("bind loopback")
}

#[test]
fn daemon_serves_concurrent_clients() {
    let handle = echo_server(
        ServerConfig {
            shards: 2,
            ..Default::default()
        },
        Duration::ZERO,
    );
    let addr = handle.addr().to_string();

    let mut clients = Vec::new();
    for c in 0..4u32 {
        let addr = addr.clone();
        clients.push(std::thread::spawn(move || {
            let mut client = NetClient::connect(&addr).unwrap();
            for i in 0..25u32 {
                let q = format!("client-{c}-query-{i}").into_bytes();
                let got = client.query(&q).unwrap();
                assert_eq!(got, EchoRunner::expected(&q));
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }

    let stats = handle.stats();
    assert_eq!(stats.accepted, 100);
    assert_eq!(stats.served, 100);
    // The runner reports one fused kernel pass per batch, so the pass
    // counters must balance: passes + saved == queries served.
    assert_eq!(stats.kernel_passes, stats.batches);
    assert_eq!(stats.kernel_passes + stats.passes_saved, stats.served);
    assert_eq!(stats.per_shard_served.len(), 2);
    // Round-robin connection placement spreads clients over both shards.
    assert!(
        stats.per_shard_served.iter().all(|&n| n > 0),
        "both shards served work: {:?}",
        stats.per_shard_served
    );

    handle.drain();
    let final_stats = handle.join();
    assert_eq!(final_stats.served, 100);
}

#[test]
fn over_quota_tenant_is_shed_with_retry_hint_and_others_are_not() {
    // qps≈0 so the bucket never refills during the test: tenant 1 has
    // exactly 3 tokens, tenant 2 has its own 3.
    let handle = echo_server(
        ServerConfig {
            shards: 1,
            quota: Some(QuotaConfig {
                qps: 1e-9,
                burst: 3.0,
            }),
            ..Default::default()
        },
        Duration::ZERO,
    );
    let addr = handle.addr().to_string();

    let tenant = |t: u32| ClientConfig {
        tenant: t,
        ..Default::default()
    };
    let mut hog = NetClient::connect_with(&addr, tenant(1)).unwrap();
    let mut polite = NetClient::connect_with(&addr, tenant(2)).unwrap();

    let mut hog_ok = 0;
    let mut hog_shed = 0;
    for i in 0..6u32 {
        let id = hog.submit(format!("hog-{i}").as_bytes()).unwrap();
        match hog.recv_response().unwrap().unwrap() {
            (got, Response::Ok(_)) => {
                assert_eq!(got, id);
                hog_ok += 1;
            }
            (got, Response::Shed(ShedReason::QuotaExceeded, retry_after_us)) => {
                assert_eq!(got, id);
                assert!(retry_after_us > 0, "shed carries a retry hint");
                hog_shed += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!((hog_ok, hog_shed), (3, 3));

    // The other tenant's bucket is untouched by the hog's appetite.
    for i in 0..3u32 {
        let q = format!("polite-{i}").into_bytes();
        assert_eq!(polite.query(&q).unwrap(), EchoRunner::expected(&q));
    }

    let stats = hog.stats().unwrap();
    assert_eq!(stats.shed_quota, 3);
    assert_eq!(stats.accepted, 6);
    handle.drain();
    handle.join();
}

#[test]
fn full_queue_sheds_with_queue_full() {
    // One shard, tiny queue, slow batches: back-to-back submits overrun
    // the queue and must be refused, not silently dropped.
    let handle = echo_server(
        ServerConfig {
            shards: 1,
            queue_capacity: 2,
            max_batch: 1,
            quota: None,
            ..Default::default()
        },
        Duration::from_millis(150),
    );
    let mut client = NetClient::connect(&handle.addr().to_string()).unwrap();

    let n = 10u32;
    let mut ids = HashSet::new();
    for i in 0..n {
        ids.insert(client.submit(format!("q{i}").as_bytes()).unwrap());
    }
    let mut ok = 0u64;
    let mut shed = 0u64;
    for _ in 0..n {
        let (id, resp) = client.recv_response().unwrap().expect("answer per submit");
        assert!(ids.remove(&id), "exactly one answer per id");
        match resp {
            Response::Ok(_) => ok += 1,
            Response::Shed(ShedReason::QueueFull, _) => shed += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(ids.is_empty());
    assert!(
        shed > 0,
        "a 2-slot queue under 10 instant submits must shed"
    );
    assert_eq!(ok + shed, n as u64);

    let stats = client.stats().unwrap();
    assert_eq!(stats.shed_queue_full, shed);
    assert_eq!(stats.accepted, ok);
    handle.drain();
    handle.join();
}

#[test]
fn cancel_answers_with_shed_cancelled() {
    let handle = echo_server(
        ServerConfig {
            shards: 1,
            max_batch: 1,
            ..Default::default()
        },
        Duration::from_millis(200),
    );
    let mut client = NetClient::connect(&handle.addr().to_string()).unwrap();

    // q1 occupies the exec thread for 200 ms; q2 waits in the queue long
    // enough for the cancel to land.
    let q1 = client.submit(b"first").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let q2 = client.submit(b"second").unwrap();
    client.cancel(q2).unwrap();

    let mut got_ok = false;
    let mut got_cancel = false;
    for _ in 0..2 {
        match client.recv_response().unwrap().unwrap() {
            (id, Response::Ok(payload)) => {
                assert_eq!(id, q1);
                assert_eq!(payload, EchoRunner::expected(b"first"));
                got_ok = true;
            }
            (id, Response::Shed(ShedReason::Cancelled, _)) => {
                assert_eq!(id, q2);
                got_cancel = true;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(got_ok && got_cancel);
    assert_eq!(client.stats().unwrap().cancelled, 1);
    handle.drain();
    handle.join();
}

#[test]
fn expired_deadline_is_shed_as_expired() {
    let handle = echo_server(
        ServerConfig {
            shards: 1,
            max_batch: 1,
            ..Default::default()
        },
        Duration::from_millis(200),
    );
    let addr = handle.addr().to_string();
    let mut blocker = NetClient::connect(&addr).unwrap();
    let mut client = NetClient::connect_with(
        &addr,
        ClientConfig {
            deadline_us: 1, // expires while the blocker's batch runs
            ..Default::default()
        },
    )
    .unwrap();

    let b = blocker.submit(b"slow").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let e = client.submit(b"doomed").unwrap();

    match client.recv_response().unwrap().unwrap() {
        (id, Response::Shed(ShedReason::Expired, _)) => assert_eq!(id, e),
        other => panic!("unexpected response {other:?}"),
    }
    match blocker.recv_response().unwrap().unwrap() {
        (id, Response::Ok(_)) => assert_eq!(id, b),
        other => panic!("unexpected response {other:?}"),
    }
    assert_eq!(client.stats().unwrap().expired, 1);
    handle.drain();
    handle.join();
}

/// The graceful-drain contract: when a `Drain` lands mid-load, every
/// query accepted before it still gets its `Result` (zero result loss),
/// late submits get typed `Shed(Draining)`, and the daemon then closes
/// every connection and exits. Verified from both sides: clients check
/// one answer per submitted id; the server's final counters must balance
/// exactly (accepted == served + expired + cancelled).
#[test]
fn drain_under_load_loses_no_accepted_query() {
    let handle = echo_server(
        ServerConfig {
            shards: 2,
            queue_capacity: 1024,
            max_batch: 4,
            quota: None,
            ..Default::default()
        },
        Duration::from_millis(2),
    );
    let addr = handle.addr().to_string();

    let mut clients = Vec::new();
    for c in 0..3u32 {
        let addr = addr.clone();
        clients.push(std::thread::spawn(move || {
            let mut client = NetClient::connect(&addr).unwrap();
            let mut submitted = HashSet::new();
            let mut answered = HashSet::new();
            let mut ok = 0u64;
            // Keep submitting until the pipe breaks (drain closed it),
            // then read answers until EOF.
            for i in 0..10_000u32 {
                match client.submit(format!("c{c}-q{i}").as_bytes()) {
                    Ok(id) => submitted.insert(id),
                    Err(_) => break,
                };
                // Interleave reads so the kernel buffers never fill.
                if i % 8 == 7 {
                    match client.recv_response() {
                        Ok(Some((id, resp))) => {
                            assert!(answered.insert(id), "duplicate answer for {id}");
                            if matches!(resp, Response::Ok(_)) {
                                ok += 1;
                            }
                        }
                        Ok(None) | Err(_) => break,
                    }
                }
            }
            while let Ok(Some((id, resp))) = client.recv_response() {
                assert!(answered.insert(id), "duplicate answer for {id}");
                if matches!(resp, Response::Ok(_)) {
                    ok += 1;
                }
            }
            (submitted, answered, ok)
        }));
    }

    // Let load build, then pull the plug from a separate admin connection.
    std::thread::sleep(Duration::from_millis(100));
    let mut admin = NetClient::connect(&addr).unwrap();
    admin.drain().unwrap();

    let mut total_ok = 0u64;
    for c in clients {
        let (submitted, answered, ok) = c.join().unwrap();
        // Every answer matches a submit; every answered id is unique.
        assert!(answered.is_subset(&submitted));
        total_ok += ok;
    }

    let stats = handle.join();
    // Zero result loss, counted on the server: everything accepted was
    // served (or got its typed expired/cancelled shed — none here).
    assert_eq!(
        stats.accepted,
        stats.served + stats.expired + stats.cancelled,
        "drain must answer every accepted query: {stats:?}"
    );
    assert_eq!(stats.expired + stats.cancelled, 0);
    // The full submit ledger: every Submit frame the daemon decoded is
    // accounted for as accepted or some typed shed — nothing vanishes.
    assert_eq!(
        stats.submits,
        stats.accepted + stats.shed_queue_full + stats.shed_quota + stats.shed_draining,
        "submit ledger must balance: {stats:?}"
    );
    // And counted on the clients: every Ok that reached a client is one
    // the server served. (Results the kernel was still carrying at EOF
    // cannot exceed what the server says it served.)
    assert!(total_ok <= stats.served);
    assert!(stats.served > 0, "load ran before the drain");
    assert!(stats.accepted > 0);
}

// ---------------------------------------------------------------------
// Hardening: fault-injected connections, pipelining caps, slowloris.
// ---------------------------------------------------------------------

/// Kill-at-every-byte sweep: a client connection is hard-reset at every
/// possible byte offset of a Submit frame. Whatever the cut point, the
/// server must (a) never double-answer any query, (b) release every
/// queue/slab slot it took, and (c) keep its accounting identity exact —
/// proven by serving a full queue's worth of work afterwards and by the
/// final drained counters.
#[test]
fn kill_at_every_byte_never_double_answers_and_releases_slots() {
    use parblast::net::FaultyStream;
    use parblast_hwsim::{SocketDir, SocketFaultSchedule};
    use std::io::Write;

    let handle = echo_server(
        ServerConfig {
            shards: 1,
            queue_capacity: 4,
            max_batch: 1,
            quota: None,
            read_deadline: Some(Duration::from_millis(250)),
            ..Default::default()
        },
        Duration::ZERO,
    );
    let addr = handle.addr().to_string();

    let frame = encode_frame(&Frame::Submit {
        id: 1,
        tenant: 0,
        priority: Priority::Normal,
        deadline_us: 0,
        query: b"kill-sweep".to_vec(),
    });

    let mut completed = 0u64;
    for cut in 0..=frame.len() as u64 {
        // `cut == frame.len()` is the control case: the fault offset sits
        // past the frame, so the whole Submit is delivered and the
        // connection then drops without reading its answer.
        let sched = SocketFaultSchedule::new().reset_at(SocketDir::Write, cut);
        let stream = std::net::TcpStream::connect(&addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut s = FaultyStream::new(stream, &sched);
        let mut off = 0usize;
        while let Ok(n) = s.write(&frame[off..]) {
            off += n;
            if off == frame.len() {
                break;
            }
        }
        let _ = s.flush();
        assert_eq!(off as u64, cut.min(frame.len() as u64), "cut {cut}");
        if off == frame.len() {
            completed += 1;
        }
        // Dropping `s` closes the socket; for cut < len the reset already
        // hard-closed it mid-frame.
    }
    assert_eq!(completed, 1, "exactly the control connection completes");

    // Give the reaper a few ticks, then prove no slot leaked: a healthy
    // client can still push a full queue's worth of queries through.
    std::thread::sleep(Duration::from_millis(100));
    let mut client = NetClient::connect(&addr).unwrap();
    let mut ids = HashSet::new();
    for i in 0..4u32 {
        ids.insert(client.submit(format!("post-sweep-{i}").as_bytes()).unwrap());
    }
    for _ in 0..4 {
        let (id, resp) = client.recv_response().unwrap().expect("answer");
        assert!(ids.remove(&id), "exactly one answer per id");
        assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
    }

    let stats = client.stats().unwrap();
    // Only complete Submit frames reach the ledger: the control kill plus
    // the four post-sweep queries.
    assert_eq!(stats.submits, 1 + 4);
    assert_eq!(stats.accepted, 1 + 4);

    handle.drain();
    let stats = handle.join();
    // The one-answer-per-accept identity holds through every kill: the
    // control query was served (its answer routed to a dead connection
    // and dropped there, which still counts as served) or cancelled at
    // dequeue if the reaper flagged it first.
    assert_eq!(
        stats.accepted,
        stats.served + stats.expired + stats.cancelled,
        "{stats:?}"
    );
    assert_eq!(
        stats.submits,
        stats.accepted + stats.shed_queue_full + stats.shed_quota + stats.shed_draining,
        "{stats:?}"
    );
}

/// The per-connection in-flight cap: a client that pipelines more unread
/// Submits than `max_inflight_per_conn` gets the excess shed QueueFull
/// while the in-cap prefix is still served — one greedy pipeliner cannot
/// monopolize a shard.
#[test]
fn inflight_cap_sheds_excess_pipelining() {
    let handle = echo_server(
        ServerConfig {
            shards: 1,
            max_batch: 1,
            max_inflight_per_conn: 2,
            ..Default::default()
        },
        Duration::from_millis(100),
    );
    let mut client = NetClient::connect(&handle.addr().to_string()).unwrap();

    let mut ids = HashSet::new();
    for i in 0..6u32 {
        ids.insert(client.submit(format!("pipeline-{i}").as_bytes()).unwrap());
    }
    let mut ok = 0u64;
    let mut shed = 0u64;
    for _ in 0..6 {
        let (id, resp) = client.recv_response().unwrap().expect("answer per submit");
        assert!(ids.remove(&id), "exactly one answer per id");
        match resp {
            Response::Ok(_) => ok += 1,
            Response::Shed(ShedReason::QueueFull, _) => shed += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    // The 6 submits land within microseconds while the first batch needs
    // 100 ms, so exactly the cap's worth is accepted.
    assert_eq!((ok, shed), (2, 4));
    let stats = client.stats().unwrap();
    assert_eq!(stats.shed_queue_full, 4);
    assert_eq!(stats.accepted, 2);
    handle.drain();
    handle.join();
}

/// Slowloris: a connection holding a partial frame past the read deadline
/// is evicted even while it keeps trickling bytes — byte progress does
/// not reset the partial-frame clock, only frame completion does.
#[test]
fn slowloris_partial_frame_is_evicted() {
    use std::io::{Read, Write};

    let handle = echo_server(
        ServerConfig {
            shards: 1,
            read_deadline: Some(Duration::from_millis(100)),
            ..Default::default()
        },
        Duration::ZERO,
    );
    let addr = handle.addr().to_string();

    let frame = encode_frame(&Frame::Submit {
        id: 1,
        tenant: 0,
        priority: Priority::Normal,
        deadline_us: 0,
        query: vec![7; 64],
    });
    let mut sock = std::net::TcpStream::connect(&addr).unwrap();
    sock.set_nodelay(true).unwrap();
    sock.write_all(&frame[..6]).unwrap();
    // Trickle one byte every 40 ms: total elapsed blows through the
    // 100 ms deadline even though bytes keep arriving.
    for i in 6..12 {
        std::thread::sleep(Duration::from_millis(40));
        // Writes may start failing once the server hard-closes us.
        let _ = sock.write_all(&frame[i..i + 1]);
    }
    // The server must have hung up on us: EOF or a reset error.
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 16];
    match sock.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("evicted connection produced {n} bytes"),
    }

    // A well-behaved client on the same daemon is unaffected.
    let mut client = NetClient::connect(&addr).unwrap();
    let q = b"healthy".to_vec();
    assert_eq!(client.query(&q).unwrap(), EchoRunner::expected(&q));
    let stats = client.stats().unwrap();
    assert_eq!(stats.evicted, 1);
    assert_eq!(stats.submits, 1, "the partial Submit never decoded");
    handle.drain();
    handle.join();
}
