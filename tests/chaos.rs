//! Seeded chaos conformance for the serving tier.
//!
//! Two layers. The *scripted* half drives [`NetClient`] against an
//! in-process fake server (a [`Dialer`] that decodes frames and answers
//! from a script), pinning each resilience mechanism in isolation:
//! deadline propagation shrinks across attempts, the retry budget stops
//! a retry storm, the circuit breaker opens/half-opens/recloses, `Shed`
//! and `Corrupt` are never retried, hedges fire and cancel their losers,
//! and retries reuse the pooled connection instead of re-dialing.
//!
//! The *conformance* half runs a real daemon over loopback TCP under
//! [`ChaosDialer`] fault schedules — resets, short ops, stalls — across
//! three seeds each, asserting the accounting identities hold under
//! every injected fault and that every payload that does come back is
//! byte-identical to the fault-free answer:
//!
//! ```text
//! submits  == accepted + shed_queue_full + shed_quota + shed_draining
//! accepted == served + expired + cancelled
//! ```

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use parblast::net::{
    encode_frame, BreakerConfig, BreakerState, BudgetConfig, ChaosDialer, ClientConfig,
    ClientError, ClientStream, Dialer, EchoRunner, Frame, FrameReader, HedgeConfig, NetClient,
    NetServer, ResultStatus, ServerConfig, ShedReason,
};
use parblast::simcore::SimTime;
use parblast_hwsim::SocketChaosProfile;
use parblast_pvfs::RetryPolicy;

// ---------------------------------------------------------------------
// Scripted fake server: a Dialer whose streams answer from a script.
// ---------------------------------------------------------------------

/// How the fake server answers each decoded `Submit`.
enum Mode {
    /// Echo every query (`Result::Ok`).
    Echo,
    /// `Result::Failed` for the first `n` Submits, then echo.
    FailThenOk(u32),
    /// `Result::Failed` forever.
    AlwaysFailed,
    /// Typed refusal.
    Shed(ShedReason),
    /// `Result::Corrupt` forever.
    Corrupt,
    /// Never answer the first Submit; echo from the second on (the
    /// hedge-win script).
    SilentThenEcho,
    /// Every read fails with `ConnectionReset` (transport death).
    ResetOnRead,
}

struct FakeState {
    mode: Mode,
    reader: FrameReader,
    out: Vec<u8>,
    /// Every frame the "server" decoded, in order.
    received: Vec<Frame>,
    submits_seen: u32,
    read_timeout: Option<Duration>,
}

impl FakeState {
    fn answer(&mut self, frame: Frame) {
        if let Frame::Submit { id, ref query, .. } = frame {
            self.submits_seen += 1;
            let reply = match &mut self.mode {
                Mode::Echo => Some(Frame::Result {
                    id,
                    status: ResultStatus::Ok,
                    payload: EchoRunner::expected(query),
                }),
                Mode::FailThenOk(n) => {
                    if *n > 0 {
                        *n -= 1;
                        Some(Frame::Result {
                            id,
                            status: ResultStatus::Failed,
                            payload: b"scripted failure".to_vec(),
                        })
                    } else {
                        Some(Frame::Result {
                            id,
                            status: ResultStatus::Ok,
                            payload: EchoRunner::expected(query),
                        })
                    }
                }
                Mode::AlwaysFailed => Some(Frame::Result {
                    id,
                    status: ResultStatus::Failed,
                    payload: b"scripted failure".to_vec(),
                }),
                Mode::Shed(reason) => Some(Frame::Shed {
                    id,
                    reason: *reason,
                    retry_after_us: 5,
                }),
                Mode::Corrupt => Some(Frame::Result {
                    id,
                    status: ResultStatus::Corrupt,
                    payload: b"bad volume".to_vec(),
                }),
                Mode::SilentThenEcho => (self.submits_seen >= 2).then(|| Frame::Result {
                    id,
                    status: ResultStatus::Ok,
                    payload: EchoRunner::expected(query),
                }),
                Mode::ResetOnRead => None,
            };
            if let Some(r) = reply {
                self.out.extend_from_slice(&encode_frame(&r));
            }
        }
        self.received.push(frame);
    }
}

/// A [`ClientStream`] view onto the shared fake-server state. All dials
/// from one [`FakeDialer`] share the same state, so a re-dial "reaches
/// the same server" — received frames and the script survive it.
struct FakeStream(Arc<Mutex<FakeState>>);

impl Read for FakeStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // Emulate a blocking socket with a read timeout: data if any,
        // else sleep out the timeout and report it.
        let sleep = {
            let mut st = self.0.lock().unwrap();
            if matches!(st.mode, Mode::ResetOnRead) {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "scripted reset",
                ));
            }
            if !st.out.is_empty() {
                let n = st.out.len().min(buf.len());
                buf[..n].copy_from_slice(&st.out[..n]);
                st.out.drain(..n);
                return Ok(n);
            }
            st.read_timeout.unwrap_or(Duration::from_millis(5))
        };
        std::thread::sleep(sleep);
        let mut st = self.0.lock().unwrap();
        if !st.out.is_empty() {
            let n = st.out.len().min(buf.len());
            buf[..n].copy_from_slice(&st.out[..n]);
            st.out.drain(..n);
            return Ok(n);
        }
        Err(io::Error::new(io::ErrorKind::TimedOut, "scripted timeout"))
    }
}

impl Write for FakeStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.0.lock().unwrap();
        st.reader.feed(buf);
        while let Ok(Some(frame)) = st.reader.next_frame() {
            st.answer(frame);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl ClientStream for FakeStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.0.lock().unwrap().read_timeout = dur;
        Ok(())
    }

    fn shutdown(&self) -> io::Result<()> {
        Ok(())
    }
}

struct FakeDialer {
    state: Arc<Mutex<FakeState>>,
    dials: AtomicU64,
}

impl FakeDialer {
    fn new(mode: Mode) -> Arc<Self> {
        Arc::new(FakeDialer {
            state: Arc::new(Mutex::new(FakeState {
                mode,
                reader: FrameReader::new(),
                out: Vec::new(),
                received: Vec::new(),
                submits_seen: 0,
                read_timeout: None,
            })),
            dials: AtomicU64::new(0),
        })
    }

    fn submit_deadlines(&self) -> Vec<u64> {
        self.state
            .lock()
            .unwrap()
            .received
            .iter()
            .filter_map(|f| match f {
                Frame::Submit { deadline_us, .. } => Some(*deadline_us),
                _ => None,
            })
            .collect()
    }

    fn cancelled_ids(&self) -> Vec<u64> {
        self.state
            .lock()
            .unwrap()
            .received
            .iter()
            .filter_map(|f| match f {
                Frame::Cancel { id } => Some(*id),
                _ => None,
            })
            .collect()
    }

    fn set_mode(&self, mode: Mode) {
        self.state.lock().unwrap().mode = mode;
    }
}

impl Dialer for FakeDialer {
    fn dial(&self, _addr: &str) -> io::Result<Box<dyn ClientStream>> {
        self.dials.fetch_add(1, Ordering::SeqCst);
        Ok(Box::new(FakeStream(self.state.clone())))
    }
}

/// A fast retry policy so scripted tests finish in milliseconds.
fn fast_retry(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        timeout: SimTime::from_millis(100),
        base_backoff: SimTime::from_millis(1),
        max_backoff: SimTime::from_millis(2),
        max_retries,
    }
}

// ---------------------------------------------------------------------
// Scripted resilience tests.
// ---------------------------------------------------------------------

/// Each attempt stamps its Submit with the budget *remaining*, so the
/// server-observed deadline shrinks monotonically across retries.
#[test]
fn deadline_propagation_shrinks_across_attempts() {
    let dialer = FakeDialer::new(Mode::FailThenOk(2));
    let config = ClientConfig {
        deadline_us: 300_000,
        retry: fast_retry(3),
        ..Default::default()
    };
    let mut client = NetClient::connect_with_dialer("fake", config, dialer.clone()).unwrap();
    let got = client.query(b"propagate").unwrap();
    assert_eq!(got, EchoRunner::expected(b"propagate"));

    let deadlines = dialer.submit_deadlines();
    assert_eq!(deadlines.len(), 3, "two failures then the success");
    assert!(
        deadlines.windows(2).all(|w| w[1] < w[0]),
        "propagated budget must shrink: {deadlines:?}"
    );
    assert!(deadlines.iter().all(|&d| d > 0 && d <= 300_000));
    // Satellite: all three attempts rode the *same* pooled connection —
    // a server-side Failed does not invalidate the transport.
    assert_eq!(dialer.dials.load(Ordering::SeqCst), 1);
    assert_eq!(client.counters().retries, 2);
}

/// An exhausted retry budget surfaces the last error instead of
/// multiplying load on a struggling server.
#[test]
fn retry_budget_exhaustion_stops_the_storm() {
    let dialer = FakeDialer::new(Mode::AlwaysFailed);
    let config = ClientConfig {
        retry: fast_retry(5),
        budget: BudgetConfig {
            capacity: 1.0,
            per_success: 0.0,
            initial: 1.0,
        },
        ..Default::default()
    };
    let mut client = NetClient::connect_with_dialer("fake", config, dialer.clone()).unwrap();
    match client.query(b"doomed") {
        Err(ClientError::Failed(_)) => {}
        other => panic!("expected Failed, got {other:?}"),
    }
    // Initial attempt + exactly one budget-funded retry; the rest of the
    // retry allowance was refused by the empty bucket.
    assert_eq!(dialer.state.lock().unwrap().submits_seen, 2);
    let c = client.counters();
    assert_eq!(c.retries, 1);
    assert_eq!(c.budget_exhausted, 1);
    assert_eq!(client.budget_tokens(), 0.0);
}

/// Consecutive transport failures trip the breaker; while open, calls
/// fail fast without touching the network; after the cooldown a single
/// half-open probe recloses it.
#[test]
fn circuit_breaker_opens_fails_fast_and_recloses() {
    let dialer = FakeDialer::new(Mode::ResetOnRead);
    let config = ClientConfig {
        retry: fast_retry(0),
        breaker: BreakerConfig {
            consecutive_failures: 2,
            cooldown_ns: 50_000_000, // 50 ms
        },
        ..Default::default()
    };
    let mut client = NetClient::connect_with_dialer("fake", config, dialer.clone()).unwrap();

    for _ in 0..2 {
        match client.query(b"dead") {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }
    assert_eq!(client.breaker_state(), BreakerState::Open);
    let submits_before = dialer.state.lock().unwrap().submits_seen;
    match client.query(b"fast-fail") {
        Err(ClientError::CircuitOpen) => {}
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
    assert_eq!(
        dialer.state.lock().unwrap().submits_seen,
        submits_before,
        "an open breaker must not touch the network"
    );
    assert_eq!(client.counters().breaker_fast_fails, 1);

    // Server recovers; after the cooldown one half-open probe recloses.
    dialer.set_mode(Mode::Echo);
    std::thread::sleep(Duration::from_millis(60));
    let got = client.query(b"probe").unwrap();
    assert_eq!(got, EchoRunner::expected(b"probe"));
    assert_eq!(client.breaker_state(), BreakerState::Closed);
}

/// Deterministic refusals are answers, not losses: neither `Shed` nor
/// `Corrupt` may burn a retry.
#[test]
fn shed_and_corrupt_are_never_retried() {
    for (mode, check) in [
        (
            Mode::Shed(ShedReason::QueueFull),
            Box::new(|e: ClientError| {
                matches!(
                    e,
                    ClientError::Shed {
                        reason: ShedReason::QueueFull,
                        ..
                    }
                )
            }) as Box<dyn Fn(ClientError) -> bool>,
        ),
        (
            Mode::Corrupt,
            Box::new(|e: ClientError| matches!(e, ClientError::Corrupt(_))),
        ),
    ] {
        let dialer = FakeDialer::new(mode);
        let config = ClientConfig {
            retry: fast_retry(4),
            ..Default::default()
        };
        let mut client = NetClient::connect_with_dialer("fake", config, dialer.clone()).unwrap();
        let err = client.query(b"refused").unwrap_err();
        assert!(check(err));
        assert_eq!(dialer.state.lock().unwrap().submits_seen, 1);
        assert_eq!(client.counters().retries, 0);
    }
}

/// A silent primary triggers a hedged Submit after the fixed delay; the
/// hedge wins and the loser is cancelled on the wire.
#[test]
fn hedge_fires_wins_and_cancels_the_loser() {
    let dialer = FakeDialer::new(Mode::SilentThenEcho);
    let config = ClientConfig {
        retry: fast_retry(0),
        hedge: HedgeConfig {
            enabled: true,
            fixed_us: 10_000, // hedge after 10 ms, well under the timeout
            ..Default::default()
        },
        ..Default::default()
    };
    let mut client = NetClient::connect_with_dialer("fake", config, dialer.clone()).unwrap();
    let got = client.query(b"hedged").unwrap();
    assert_eq!(got, EchoRunner::expected(b"hedged"));

    let c = client.counters();
    assert_eq!((c.hedges_sent, c.hedge_wins), (1, 1));
    let deadlines = dialer.submit_deadlines();
    assert_eq!(deadlines.len(), 2, "primary + hedge");
    // The abandoned primary was cancelled so the server frees its slot.
    assert_eq!(dialer.cancelled_ids().len(), 1);
}

// ---------------------------------------------------------------------
// Conformance: a real daemon under seeded socket chaos.
// ---------------------------------------------------------------------

fn echo_server(config: ServerConfig, delay: Duration) -> parblast::net::ServerHandle {
    NetServer::start(
        "127.0.0.1:0",
        config,
        Arc::new(EchoRunner::with_delay(delay)),
    )
    .expect("bind loopback")
}

/// One chaos run: `queries` blocking queries through a [`ChaosDialer`],
/// then a clean drain. Returns `(ok, failed)` as counted by the client.
/// Panics if any returned payload differs from the fault-free answer or
/// if the server's final accounting does not balance.
fn chaos_conformance(profile: SocketChaosProfile, seed: u64, lossless: bool) {
    let handle = echo_server(
        ServerConfig {
            shards: 2,
            read_deadline: Some(Duration::from_millis(500)),
            ..Default::default()
        },
        Duration::ZERO,
    );
    let addr = handle.addr().to_string();

    // The schedule is a pure function of (seed, connection index): the
    // same seed must describe byte-identical chaos on every run.
    let dialer = Arc::new(ChaosDialer::new(seed, profile));
    let replay = ChaosDialer::new(seed, profile);
    for i in 0..8 {
        assert_eq!(
            dialer.schedule_for(i).digest(),
            replay.schedule_for(i).digest(),
            "seed {seed} connection {i} schedule diverged"
        );
    }

    let config = ClientConfig {
        retry: RetryPolicy {
            timeout: SimTime::from_millis(300),
            base_backoff: SimTime::from_millis(1),
            max_backoff: SimTime::from_millis(5),
            max_retries: 4,
        },
        ..Default::default()
    };
    let mut ok = 0u64;
    let mut failed = 0u64;
    match NetClient::connect_with_dialer(&addr, config, dialer) {
        Ok(mut client) => {
            for i in 0..30u32 {
                let q = format!("chaos-{seed}-{i}").into_bytes();
                match client.query(&q) {
                    Ok(payload) => {
                        // Whatever the chaos did to the transport, a
                        // payload that arrives is byte-identical to the
                        // fault-free answer.
                        assert_eq!(payload, EchoRunner::expected(&q), "query {i} seed {seed}");
                        ok += 1;
                    }
                    Err(_) => failed += 1,
                }
            }
        }
        Err(_) => failed += 30,
    }

    // Zero-loss drain through a clean connection.
    let mut admin = NetClient::connect(&addr).unwrap();
    admin.drain().unwrap();
    let stats = handle.join();
    assert_eq!(
        stats.submits,
        stats.accepted + stats.shed_queue_full + stats.shed_quota + stats.shed_draining,
        "seed {seed}: submit ledger must balance: {stats:?}"
    );
    assert_eq!(
        stats.accepted,
        stats.served + stats.expired + stats.cancelled,
        "seed {seed}: every accepted query answered exactly once: {stats:?}"
    );
    assert!(ok > 0, "seed {seed}: no query survived the chaos");
    if lossless {
        assert_eq!(
            failed, 0,
            "seed {seed}: non-destructive faults must lose nothing"
        );
    }
}

#[test]
fn chaos_conformance_resets_three_seeds() {
    for seed in [42u64, 1003, 77] {
        chaos_conformance(SocketChaosProfile::resets(0.3, 200), seed, false);
    }
}

#[test]
fn chaos_conformance_short_ops_three_seeds() {
    for seed in [42u64, 1003, 77] {
        chaos_conformance(SocketChaosProfile::short_ops(0.9, 4, 256), seed, true);
    }
}

#[test]
fn chaos_conformance_stalls_three_seeds() {
    for seed in [42u64, 1003, 77] {
        chaos_conformance(SocketChaosProfile::stalls(0.8, 2, 256), seed, true);
    }
}
