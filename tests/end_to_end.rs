//! Cross-crate integration tests: the full pipeline from synthetic
//! database generation through formatting, segmentation, the three I/O
//! schemes, and the search engine, checked end to end.

use parblast::blast::{blastall, tabular, DbStats, Program, SearchParams};
use parblast::mpiblast::{ParallelBlast, Parallelization, Scheme, Tracer};
use parblast::pio::{read_all, ObjectStore};
use parblast::seqdb::blastdb::DbSequence;
use parblast::seqdb::{
    extract_query, segment_into_fragments, FastaReader, FastaWriter, SeqType, SyntheticConfig,
    SyntheticNt, Volume,
};
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("parblast_it_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn gen_db(total: u64, seed: u64) -> (Vec<(String, Vec<u8>)>, DbStats) {
    let mut g = SyntheticNt::new(SyntheticConfig {
        total_residues: total,
        seed,
        ..Default::default()
    });
    let mut seqs = Vec::new();
    while let Some(s) = g.next() {
        seqs.push(s);
    }
    let db = DbStats {
        residues: g.residues(),
        nseq: g.sequences(),
    };
    (seqs, db)
}

/// FASTA round trip through real files feeds the search engine.
#[test]
fn fasta_to_search_pipeline() {
    let dir = tmp("fasta");
    let (seqs, _) = gen_db(200_000, 11);
    // Write FASTA (ASCII), read it back, re-encode, search.
    let path = dir.join("db.fa");
    {
        let mut w = FastaWriter::create(&path).unwrap();
        for (defline, codes) in &seqs {
            let ascii = parblast::seqdb::to_ascii(codes);
            let mut parts = defline.splitn(2, ' ');
            w.write_record(parts.next().unwrap(), parts.next().unwrap_or(""), &ascii)
                .unwrap();
        }
        w.finish().unwrap();
    }
    let records = FastaReader::open(&path).unwrap().read_all().unwrap();
    assert_eq!(records.len(), seqs.len());
    let volume = Volume {
        seq_type: SeqType::Nucleotide,
        sequences: records
            .into_iter()
            .map(|r| DbSequence {
                defline: r.defline(),
                codes: parblast::seqdb::encode_nt_seq(&r.seq),
            })
            .collect(),
    };
    // Codes must survive the ASCII round trip exactly.
    for (orig, back) in seqs.iter().zip(&volume.sequences) {
        assert_eq!(orig.1, back.codes, "round trip broke {}", back.defline);
    }
    let src = seqs.iter().position(|(_, c)| c.len() >= 400).unwrap();
    let query = extract_query(&seqs[src].1, 400, 0.0, 3);
    let hits = blastall(Program::Blastn, &query, &volume, &SearchParams::blastn());
    assert_eq!(
        hits[0].subject_id,
        seqs[src].0.split_whitespace().next().unwrap()
    );
    assert_eq!(hits[0].hsps[0].identities, 400);
    std::fs::remove_dir_all(&dir).ok();
}

/// The same bytes come back through every storage backend, and the striped
/// store spreads them across servers.
#[test]
fn storage_backends_are_byte_identical() {
    let dir = tmp("stores");
    let (seqs, _) = gen_db(150_000, 13);
    let frags =
        segment_into_fragments(&dir.join("fmt"), "nt", SeqType::Nucleotide, 3, seqs).unwrap();
    let payload = std::fs::read(&frags[0].path).unwrap();

    let schemes = [
        Scheme::local_at(&dir.join("l"), 2).unwrap(),
        Scheme::pvfs_at(&dir.join("p"), 5, 4096).unwrap(),
        Scheme::ceft_at(&dir.join("c"), 3, 4096).unwrap(),
    ];
    for scheme in &schemes {
        scheme.load_fragment("frag", &payload).unwrap();
    }
    for scheme in &schemes {
        let (mut r, _) = scheme.open_for_worker(0, "frag").unwrap();
        let mut buf = vec![0u8; payload.len()];
        r.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, payload, "{}", scheme.name());
    }
    // Direct store-level check for the striped backend.
    if let Scheme::Pvfs(st) = &schemes[1] {
        assert_eq!(read_all(st, "frag").unwrap(), payload);
        assert_eq!(st.size("frag").unwrap(), payload.len() as u64);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// mpiBLAST semantics: fragment-segmented parallel search returns the same
/// hit set as an unsegmented single search (E-values computed against the
/// full database in both cases).
#[test]
fn segmented_search_equals_whole_database_search() {
    let dir = tmp("equiv");
    let (seqs, db) = gen_db(300_000, 17);
    let query = extract_query(&seqs[5].1, 568, 0.03, 9);

    // Whole-database search.
    let volume = Volume {
        seq_type: SeqType::Nucleotide,
        sequences: seqs
            .iter()
            .map(|(d, c)| DbSequence {
                defline: d.clone(),
                codes: c.clone(),
            })
            .collect(),
    };
    let params = SearchParams::blastn();
    let whole = blastall(Program::Blastn, &query, &volume, &params);

    // Parallel segmented search over 4 fragments, 3 workers.
    let infos =
        segment_into_fragments(&dir.join("fmt"), "nt", SeqType::Nucleotide, 4, seqs).unwrap();
    let scheme = Scheme::local_at(&dir.join("io"), 3).unwrap();
    let mut fragments = Vec::new();
    for info in &infos {
        let bytes = std::fs::read(&info.path).unwrap();
        let name = info
            .path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        scheme.load_fragment(&name, &bytes).unwrap();
        fragments.push(name);
    }
    let key = |hits: &[parblast::blast::Hit]| -> Vec<(String, i32)> {
        let mut v: Vec<(String, i32)> = hits
            .iter()
            .map(|h| (h.subject_id.clone(), h.best_score()))
            .collect();
        v.sort();
        v
    };
    // Equivalence must hold for every combination of the two I/O-shape
    // knobs: fragment prefetch and list-I/O request aggregation.
    for prefetch in [false, true] {
        for list_io in [false, true] {
            let job = ParallelBlast {
                program: Program::Blastn,
                params: params.clone(),
                db,
                fragments: fragments.clone(),
                workers: 3,
                scheme: scheme.clone(),
                tracer: Tracer::disabled(),
                parallelization: Parallelization::DatabaseSegmentation,
                prefetch,
                list_io,
            };
            let out = job.run(&query).unwrap();
            assert_eq!(
                key(&whole),
                key(&out.hits),
                "prefetch={prefetch} list_io={list_io}"
            );
            // And E-values agree for the best hit.
            let best_whole = whole[0].best_evalue();
            let best_seg = out.hits[0].best_evalue();
            assert!(
                (best_whole.log10() - best_seg.log10()).abs() < 1e-9,
                "prefetch={prefetch} list_io={list_io}: {best_whole} vs {best_seg}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// All five BLAST programs run end to end on appropriate databases.
#[test]
fn all_five_programs_execute() {
    use parblast::seqdb::encode_aa_seq;
    let (seqs, _) = gen_db(60_000, 23);
    let nt_volume = Volume {
        seq_type: SeqType::Nucleotide,
        sequences: seqs
            .iter()
            .map(|(d, c)| DbSequence {
                defline: d.clone(),
                codes: c.clone(),
            })
            .collect(),
    };
    let aa_volume = Volume {
        seq_type: SeqType::Protein,
        sequences: vec![DbSequence {
            defline: "prot1 synthetic protein".into(),
            codes: encode_aa_seq(b"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFKDLGEENFKALVLIAFAQYLQQC"),
        }],
    };
    let nt_query = extract_query(&seqs[0].1, 300, 0.0, 5);
    let aa_query = encode_aa_seq(b"MKWVTFISLLFLFSSAYSRGVFRRDAHKSE");
    let mut pn = SearchParams::blastn();
    pn.evalue = 10.0;
    let mut pp = SearchParams::blastp();
    pp.evalue = 1e3;

    assert!(!blastall(Program::Blastn, &nt_query, &nt_volume, &pn).is_empty());
    assert!(!blastall(Program::Blastp, &aa_query, &aa_volume, &pp).is_empty());
    // blastx: translated nt query against the protein db — use a query
    // that is the coding sequence of the protein (built by reverse lookup).
    let mut coding = Vec::new();
    'aa: for &aa in &aa_query {
        for c1 in 0..4u8 {
            for c2 in 0..4u8 {
                for c3 in 0..4u8 {
                    if parblast::blast::translate_codon(c1, c2, c3) == aa {
                        coding.extend_from_slice(&[c1, c2, c3]);
                        continue 'aa;
                    }
                }
            }
        }
    }
    assert!(!blastall(Program::Blastx, &coding, &aa_volume, &pp).is_empty());
    // tblastn: protein query against a nt db containing the coding region.
    let mut nt_with_gene = nt_volume.clone();
    let mut host = nt_with_gene.sequences[0].codes.clone();
    host.splice(50..50, coding.iter().copied());
    nt_with_gene.sequences[0].codes = host;
    assert!(!blastall(Program::Tblastn, &aa_query, &nt_with_gene, &pp).is_empty());
    assert!(!blastall(Program::Tblastx, &coding, &nt_with_gene, &pp).is_empty());
}

/// The tabular report parses as 12 tab-separated columns for every hit.
#[test]
fn tabular_output_is_well_formed() {
    let (seqs, _) = gen_db(100_000, 29);
    let volume = Volume {
        seq_type: SeqType::Nucleotide,
        sequences: seqs
            .iter()
            .map(|(d, c)| DbSequence {
                defline: d.clone(),
                codes: c.clone(),
            })
            .collect(),
    };
    let query = extract_query(&seqs[1].1, 500, 0.05, 31);
    let hits = blastall(Program::Blastn, &query, &volume, &SearchParams::blastn());
    let table = tabular("q1", &hits);
    assert!(!table.is_empty());
    for line in table.lines() {
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields.len(), 12, "bad line: {line}");
        let pid: f64 = fields[2].parse().unwrap();
        assert!((0.0..=100.0).contains(&pid));
        let evalue: f64 = fields[10].parse().unwrap();
        assert!(evalue >= 0.0);
        let qs: u64 = fields[6].parse().unwrap();
        let qe: u64 = fields[7].parse().unwrap();
        assert!(qs >= 1 && qe >= qs);
    }
}
