//! Determinism audit: the simulator with a fault schedule is a pure
//! function of (configuration, seed). Two runs with the same seed must
//! produce byte-identical event-delivery traces — fault injection included
//! — and different seeds must actually change the schedule. The serving
//! layer inherits both obligations: scan-sharing batches must return
//! byte-identical results to sequential per-query serving, and a serving
//! sweep must be a pure function of its configuration.

use parblast::hwsim::FaultSchedule;
use parblast::mpiblast::{run_simblast, SimBlastConfig, SimScheme};
use parblast::simcore::SimTime;

const SEEDS: [u64; 3] = [42, 1003, 77];

fn faulted(seed: u64) -> SimBlastConfig {
    SimBlastConfig {
        nodes: 5,
        workers: 4,
        fragments: 4,
        db_bytes: 64 << 20,
        scheme: SimScheme::Ceft {
            primary: vec![0, 1],
            mirror: vec![2, 3],
        },
        master_node: 4,
        warmup_s: 1.0,
        horizon_s: 400.0,
        seed,
        capture_trace: true,
        faults: FaultSchedule::new()
            .crash_server(SimTime::from_secs_f64(3.0), 1)
            .revive_server(SimTime::from_secs_f64(10.0), 1)
            .stall_disk(SimTime::from_secs_f64(2.0), 0, SimTime::from_millis(200)),
        ..Default::default()
    }
}

#[test]
fn same_seed_and_schedule_give_identical_traces() {
    for seed in SEEDS {
        let a = run_simblast(&faulted(seed));
        let b = run_simblast(&faulted(seed));
        assert!(a.completed, "seed {seed}: CEFT must survive the schedule");
        assert!(
            !a.trace.is_empty(),
            "seed {seed}: trace capture produced nothing"
        );
        // Byte-identical: compare the rendered traces, not just counts.
        assert_eq!(
            format!("{:?}", a.trace),
            format!("{:?}", b.trace),
            "seed {seed}: two runs diverged"
        );
        assert_eq!(a.makespan_s, b.makespan_s, "seed {seed}");
        assert_eq!(a.retries, b.retries, "seed {seed}");
        assert_eq!(a.failovers, b.failovers, "seed {seed}");
    }
}

#[test]
fn different_seeds_give_different_traces() {
    let traces: Vec<String> = SEEDS
        .iter()
        .map(|&s| format!("{:?}", run_simblast(&faulted(s)).trace))
        .collect();
    assert_ne!(traces[0], traces[1]);
    assert_ne!(traces[1], traces[2]);
    assert_ne!(traces[0], traces[2]);
}

#[test]
fn trace_capture_does_not_change_the_outcome() {
    let with = faulted(42);
    let mut without = faulted(42);
    without.capture_trace = false;
    let a = run_simblast(&with);
    let b = run_simblast(&without);
    assert!(b.trace.is_empty());
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.failovers, b.failovers);
}

/// Render a blastn `search_volume` outcome to a digest that pins every
/// reported field: subject order, HSP order, raw/bit scores, E-values,
/// coordinates on both strands, and alignment statistics. Uses FNV-1a over
/// the full `Debug` rendering so any hit-for-hit deviation changes the
/// digest.
fn blastn_digest(seed: u64, gapped: bool) -> String {
    use parblast::blast::{search_volume, DbStats, Program, SearchParams};
    use parblast::seqdb::blastdb::DbSequence;
    use parblast::seqdb::{
        extract_query, reverse_complement, SeqType, SyntheticConfig, SyntheticNt, Volume,
    };

    let mut g = SyntheticNt::new(SyntheticConfig {
        total_residues: 120_000,
        seed,
        ..Default::default()
    });
    let mut seqs = vec![];
    while let Some(x) = g.next() {
        seqs.push(x);
    }
    // A mutated query cut from the database (forward-strand alignments with
    // mismatches and indels) ...
    let query = extract_query(&seqs[1].1, 500, 0.03, seed);
    // ... plus one subject carrying the reverse complement of the query so
    // minus-strand reporting is pinned too.
    let mut minus = seqs[2].1[..200.min(seqs[2].1.len())].to_vec();
    minus.extend(reverse_complement(&query));
    minus.extend_from_slice(&seqs[3].1[..150.min(seqs[3].1.len())]);
    seqs.push(("minus_planted reverse-strand target".to_string(), minus));

    let volume = Volume {
        seq_type: SeqType::Nucleotide,
        sequences: seqs
            .into_iter()
            .map(|(defline, codes)| DbSequence { defline, codes })
            .collect(),
    };
    let db = DbStats {
        residues: volume.residues(),
        nseq: volume.sequences.len() as u64,
    };
    let mut params = SearchParams::blastn();
    params.gapped = gapped;
    let hits = search_volume(Program::Blastn, &query, &volume, &params, db);
    // Both strands must actually be exercised for the pin to mean anything.
    let frames: std::collections::BTreeSet<i8> = hits
        .iter()
        .flat_map(|h| h.hsps.iter().map(|s| s.q_frame))
        .collect();
    assert!(
        frames.contains(&1) && frames.contains(&-1),
        "seed {seed}: digest must cover both strands, got {frames:?}"
    );
    let rendered = format!("{hits:?}");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in rendered.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let nhsps: usize = hits.iter().map(|x| x.hsps.len()).sum();
    format!("{}h/{}s/{:016x}", hits.len(), nhsps, h)
}

/// Golden-hits pin for the packed-scan kernel rewrite: blastn
/// `search_volume` output (scores, ranges, E-values, order) must stay
/// byte-identical to the pre-rewrite kernel (per-subject `unpack_2bit`,
/// byte-at-a-time scanner, `HashMap` diagonal tracking). The digests below
/// were captured from that kernel; the packed-scan/flat-diagonal kernel
/// must reproduce them exactly, gapped and ungapped, on both strands.
#[test]
fn blastn_results_pinned_across_kernel_rewrite() {
    const GOLDEN: [(u64, &str, &str); 3] = [
        (42, "29h/49s/0f59e4ac0a239078", "29h/49s/09ade03370d3bbca"),
        (1003, "26h/54s/18529e25739e352a", "26h/54s/3cc20b897a872e1e"),
        (77, "13h/33s/82355a661b6adde5", "13h/33s/f111f995dbb6a0cf"),
    ];
    for (seed, gapped, ungapped) in GOLDEN {
        assert_eq!(blastn_digest(seed, true), gapped, "seed {seed} gapped");
        assert_eq!(blastn_digest(seed, false), ungapped, "seed {seed} ungapped");
    }
}

/// Scan-sharing on the *real* engine: for every seed, serving a query
/// list in batches returns per-query reports byte-identical to serving
/// each query alone.
#[test]
fn batched_serving_is_byte_identical_to_sequential() {
    use parblast::blast::{DbStats, Program, SearchParams};
    use parblast::mpiblast::{ParallelBlast, Parallelization, Scheme, Tracer};
    use parblast::seqdb::{
        extract_query, segment_into_fragments, SeqType, SyntheticConfig, SyntheticNt,
    };
    use parblast::serve::serve_batched;

    for seed in SEEDS {
        let base =
            std::env::temp_dir().join(format!("determinism_serve_{seed}_{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let scheme = Scheme::local_at(&base.join("io"), 2).unwrap();
        let mut g = SyntheticNt::new(SyntheticConfig {
            total_residues: 200_000,
            seed,
            ..Default::default()
        });
        let mut seqs = vec![];
        while let Some(x) = g.next() {
            seqs.push(x);
        }
        let queries: Vec<Vec<u8>> = (0..4)
            .map(|i| extract_query(&seqs[i + 1].1, 350, 0.02, seed ^ i as u64))
            .collect();
        let db = DbStats {
            residues: g.residues(),
            nseq: g.sequences(),
        };
        let infos =
            segment_into_fragments(&base.join("fmt"), "nt", SeqType::Nucleotide, 3, seqs).unwrap();
        let mut fragments = vec![];
        for info in infos {
            let bytes = std::fs::read(&info.path).unwrap();
            let name = info
                .path
                .file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned();
            scheme.load_fragment(&name, &bytes).unwrap();
            fragments.push(name);
        }
        let job = ParallelBlast {
            program: Program::Blastn,
            params: SearchParams::blastn(),
            db,
            fragments,
            workers: 2,
            scheme,
            tracer: Tracer::new(),
            parallelization: Parallelization::DatabaseSegmentation,
            prefetch: false,
            list_io: false,
        };
        let batched = serve_batched(&job, &queries, 3).unwrap();
        let sequential = serve_batched(&job, &queries, 1).unwrap();
        assert_eq!(
            batched.per_query, sequential.per_query,
            "seed {seed}: batched and sequential reports diverged"
        );
        assert_eq!(batched.batches, 2, "seed {seed}");
        assert_eq!(sequential.batches, 4, "seed {seed}");
        std::fs::remove_dir_all(&base).ok();
    }
}

/// Fused multi-query kernel pin: for every seed, gapped and ungapped, the
/// FNV digest of one `search_packed_batch` pass equals the digest of
/// per-query `search_packed` passes — hit-for-hit, covering both strands,
/// so subject order, HSP order, scores, E-values, coordinates, and
/// tie-breaks all survive the kernel fusion.
#[test]
fn fused_batch_digest_matches_sequential() {
    use parblast::blast::{search_packed, search_packed_batch, DbStats, Program, SearchParams};
    use parblast::seqdb::{
        extract_query, reverse_complement, PackedVolume, SeqType, SyntheticConfig, SyntheticNt,
        VolumeWriter,
    };

    let fnv = |rendered: &str| -> String {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in rendered.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        format!("{h:016x}")
    };
    for seed in SEEDS {
        let mut g = SyntheticNt::new(SyntheticConfig {
            total_residues: 150_000,
            seed,
            ..Default::default()
        });
        let mut buf = std::io::Cursor::new(Vec::new());
        let mut w = VolumeWriter::new(&mut buf, SeqType::Nucleotide).unwrap();
        let mut sources = vec![];
        while let Some((defline, codes)) = g.next() {
            w.add_codes(&defline, &codes).unwrap();
            sources.push(codes);
        }
        w.finish().unwrap();
        let bytes = buf.into_inner();
        let packed = PackedVolume::read_from(&mut bytes.as_slice()).unwrap();
        let db = DbStats {
            residues: g.residues(),
            nseq: g.sequences(),
        };
        // Query mix: forward extracts (plus-strand hits), one
        // reverse-complemented extract (minus-strand hits), and one from
        // an independent stream (mostly misses) — 5 queries, one fused
        // chunk.
        let mut queries: Vec<Vec<u8>> = (0..3)
            .map(|i| extract_query(&sources[i + 1], 400, 0.03, seed ^ i as u64))
            .collect();
        queries.push(reverse_complement(&extract_query(
            &sources[4],
            400,
            0.02,
            seed ^ 9,
        )));
        let mut alien = SyntheticNt::new(SyntheticConfig {
            total_residues: 2_000,
            min_len: 600,
            seed: seed ^ 0xdead,
            ..Default::default()
        });
        let stray = alien.next().unwrap().1;
        queries.push(extract_query(&stray, 568.min(stray.len()), 0.03, seed));
        let qrefs: Vec<&[u8]> = queries.iter().map(|q| q.as_slice()).collect();

        for gapped in [true, false] {
            let mut params = SearchParams::blastn();
            params.gapped = gapped;
            let fused = search_packed_batch(Program::Blastn, &qrefs, &packed, &params, db);
            let sequential: Vec<_> = qrefs
                .iter()
                .map(|q| search_packed(Program::Blastn, q, &packed, &params, db))
                .collect();
            let frames: std::collections::BTreeSet<i8> = fused
                .iter()
                .flatten()
                .flat_map(|h| h.hsps.iter().map(|s| s.q_frame))
                .collect();
            assert!(
                frames.contains(&1) && frames.contains(&-1),
                "seed {seed} gapped={gapped}: digest must cover both strands, got {frames:?}"
            );
            assert_eq!(
                fnv(&format!("{fused:?}")),
                fnv(&format!("{sequential:?}")),
                "seed {seed} gapped={gapped}: fused and sequential digests diverged"
            );
        }
    }
}

/// The double-buffered fragment prefetch pipeline may change *when* I/O
/// happens, never what is found: for every seed and every scheme, the
/// full `Debug` rendering of the merged hits (scores, E-values,
/// coordinates, order) is identical with prefetch on and off.
#[test]
fn prefetch_on_and_off_agree_hit_for_hit() {
    use parblast::blast::{DbStats, Program, SearchParams};
    use parblast::mpiblast::{ParallelBlast, Parallelization, Scheme, Tracer};
    use parblast::seqdb::{
        extract_query, segment_into_fragments, SeqType, SyntheticConfig, SyntheticNt,
    };

    for seed in SEEDS {
        let base = std::env::temp_dir().join(format!(
            "determinism_prefetch_{seed}_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&base).unwrap();
        let mut g = SyntheticNt::new(SyntheticConfig {
            total_residues: 200_000,
            seed,
            ..Default::default()
        });
        let mut seqs = vec![];
        while let Some(x) = g.next() {
            seqs.push(x);
        }
        let query = extract_query(&seqs[2].1, 450, 0.02, seed);
        let db = DbStats {
            residues: g.residues(),
            nseq: g.sequences(),
        };
        let infos =
            segment_into_fragments(&base.join("fmt"), "nt", SeqType::Nucleotide, 4, seqs).unwrap();
        let frag_bytes: Vec<(String, Vec<u8>)> = infos
            .iter()
            .map(|info| {
                (
                    info.path
                        .file_name()
                        .unwrap()
                        .to_string_lossy()
                        .into_owned(),
                    std::fs::read(&info.path).unwrap(),
                )
            })
            .collect();
        let mut digests: Vec<(String, bool, String)> = Vec::new();
        for which in ["original", "pvfs", "ceft"] {
            for prefetch in [false, true] {
                let root = base.join(format!("{which}_{prefetch}"));
                let scheme = match which {
                    "original" => Scheme::local_at(&root, 2).unwrap(),
                    "pvfs" => Scheme::pvfs_at(&root, 4, 64 << 10).unwrap(),
                    _ => Scheme::ceft_at(&root, 2, 64 << 10).unwrap(),
                };
                let mut fragments = vec![];
                for (name, bytes) in &frag_bytes {
                    scheme.load_fragment(name, bytes).unwrap();
                    fragments.push(name.clone());
                }
                let job = ParallelBlast {
                    program: Program::Blastn,
                    params: SearchParams::blastn(),
                    db,
                    fragments,
                    workers: 2,
                    scheme,
                    tracer: Tracer::disabled(),
                    parallelization: Parallelization::DatabaseSegmentation,
                    prefetch,
                    list_io: false,
                };
                let out = job.run(&query).unwrap();
                digests.push((which.to_string(), prefetch, format!("{:?}", out.hits)));
            }
        }
        for pair in digests.chunks(2) {
            assert_eq!(
                pair[0].2, pair[1].2,
                "seed {seed} scheme {}: prefetch changed the hits",
                pair[0].0
            );
        }
        // And all three schemes agree with each other.
        assert_eq!(digests[0].2, digests[2].2, "seed {seed}: pvfs vs original");
        assert_eq!(digests[0].2, digests[4].2, "seed {seed}: ceft vs original");
        std::fs::remove_dir_all(&base).ok();
    }
}

/// List-I/O aggregation may only collapse *requests*, never change what
/// is read or found: for every seed and every scheme, the merged hits AND
/// every fragment's traced read block (header, index, data, deflines — in
/// order, with exact byte counts) are identical with list I/O on and off.
/// Blocks are compared as a sorted multiset because which worker thread
/// claims which fragment races between runs; the per-fragment read
/// sequence itself must not change. (The simulated twin below pins full
/// per-worker sequences, where scheduling is deterministic.)
#[test]
fn list_io_on_and_off_agree_hit_for_hit_and_trace_for_trace() {
    use parblast::blast::{DbStats, Program, SearchParams};
    use parblast::mpiblast::{IoKind, ParallelBlast, Parallelization, Scheme, Tracer};
    use parblast::seqdb::{
        extract_query, segment_into_fragments, SeqType, SyntheticConfig, SyntheticNt,
    };
    use std::collections::BTreeMap;

    for seed in SEEDS {
        let base =
            std::env::temp_dir().join(format!("determinism_listio_{seed}_{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let mut g = SyntheticNt::new(SyntheticConfig {
            total_residues: 200_000,
            seed,
            ..Default::default()
        });
        let mut seqs = vec![];
        while let Some(x) = g.next() {
            seqs.push(x);
        }
        let query = extract_query(&seqs[2].1, 450, 0.02, seed);
        let db = DbStats {
            residues: g.residues(),
            nseq: g.sequences(),
        };
        let infos =
            segment_into_fragments(&base.join("fmt"), "nt", SeqType::Nucleotide, 4, seqs).unwrap();
        let frag_bytes: Vec<(String, Vec<u8>)> = infos
            .iter()
            .map(|info| {
                (
                    info.path
                        .file_name()
                        .unwrap()
                        .to_string_lossy()
                        .into_owned(),
                    std::fs::read(&info.path).unwrap(),
                )
            })
            .collect();
        for which in ["original", "pvfs", "ceft"] {
            let mut runs: Vec<(String, Vec<Vec<u64>>)> = Vec::new();
            for list_io in [false, true] {
                let root = base.join(format!("{which}_{list_io}"));
                let scheme = match which {
                    "original" => Scheme::local_at(&root, 2).unwrap(),
                    "pvfs" => Scheme::pvfs_at(&root, 4, 64 << 10).unwrap(),
                    _ => Scheme::ceft_at(&root, 2, 64 << 10).unwrap(),
                };
                let mut fragments = vec![];
                for (name, bytes) in &frag_bytes {
                    scheme.load_fragment(name, bytes).unwrap();
                    fragments.push(name.clone());
                }
                let tracer = Tracer::new();
                let job = ParallelBlast {
                    program: Program::Blastn,
                    params: SearchParams::blastn(),
                    db,
                    fragments,
                    workers: 2,
                    scheme,
                    tracer: tracer.clone(),
                    parallelization: Parallelization::DatabaseSegmentation,
                    prefetch: false,
                    list_io,
                };
                let out = job.run(&query).unwrap();
                // Split each worker's in-order read stream into per-fragment
                // blocks: every volume load starts with the fixed-size
                // header read.
                let mut per_worker: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
                for e in tracer.events() {
                    if matches!(e.kind, IoKind::Read) {
                        per_worker.entry(e.worker).or_default().push(e.bytes);
                    }
                }
                let header = per_worker.values().next().unwrap()[0];
                let mut blocks: Vec<Vec<u64>> = Vec::new();
                for seq in per_worker.values() {
                    for b in seq {
                        if *b == header {
                            blocks.push(Vec::new());
                        }
                        blocks.last_mut().unwrap().push(*b);
                    }
                }
                blocks.sort();
                runs.push((format!("{:?}", out.hits), blocks));
            }
            assert_eq!(
                runs[0].0, runs[1].0,
                "seed {seed} scheme {which}: list I/O changed the hits"
            );
            assert_eq!(
                runs[0].1, runs[1].1,
                "seed {seed} scheme {which}: list I/O changed a fragment's \
                 read sequence"
            );
        }
        std::fs::remove_dir_all(&base).ok();
    }
}

/// Simulated twin of the pin above, plus the collapse itself: for every
/// seed and every scheme, turning list I/O on leaves each simulated
/// worker's traced read sequence and byte totals unchanged while the
/// servers field strictly fewer (aggregated) read requests.
#[test]
fn sim_list_io_preserves_per_worker_reads_while_collapsing_requests() {
    use parblast::mpiblast::{IoKind, Tracer};
    use std::collections::BTreeMap;

    let schemes = [
        ("original", SimScheme::Original),
        (
            "pvfs",
            SimScheme::Pvfs {
                servers: vec![0, 1, 2, 3],
            },
        ),
        (
            "ceft",
            SimScheme::Ceft {
                primary: vec![0, 1],
                mirror: vec![2, 3],
            },
        ),
    ];
    for seed in SEEDS {
        for (name, scheme) in &schemes {
            let mut runs = Vec::new();
            for list_io in [false, true] {
                let tracer = Tracer::simulated();
                let cfg = SimBlastConfig {
                    nodes: 5,
                    workers: 4,
                    fragments: 4,
                    db_bytes: 64 << 20,
                    scheme: scheme.clone(),
                    master_node: 4,
                    warmup_s: 1.0,
                    horizon_s: 400.0,
                    seed,
                    list_io,
                    io_tracer: Some(tracer.clone()),
                    ..Default::default()
                };
                let out = run_simblast(&cfg);
                assert!(out.completed, "seed {seed} {name} list_io={list_io}");
                let mut per_worker: BTreeMap<u32, Vec<(IoKind, u64)>> = BTreeMap::new();
                for e in tracer.events() {
                    if matches!(e.kind, IoKind::Read) {
                        per_worker
                            .entry(e.worker)
                            .or_default()
                            .push((e.kind, e.bytes));
                    }
                }
                let bytes: u64 = out.per_worker.iter().map(|w| w.bytes_read).sum();
                runs.push((per_worker, bytes, out));
            }
            assert_eq!(
                runs[0].0, runs[1].0,
                "seed {seed} {name}: list I/O changed a worker's read sequence"
            );
            assert_eq!(
                runs[0].1, runs[1].1,
                "seed {seed} {name}: list I/O changed the bytes read"
            );
            if *name != "original" {
                let (off, on) = (&runs[0].2, &runs[1].2);
                assert_eq!(off.server_list_reads, 0, "seed {seed} {name}");
                assert!(on.server_list_reads > 0, "seed {seed} {name}");
                assert!(
                    on.server_reads < off.server_reads,
                    "seed {seed} {name}: aggregation must collapse requests \
                     ({} vs {})",
                    on.server_reads,
                    off.server_reads
                );
            }
        }
    }
}

/// A background integrity scrub may only *read* (and, on the mirrored
/// scheme, rewrite corrupt stripes — there are none here), so for every
/// seed and every scheme the per-query reports with the scrubber running
/// are byte-identical to serving without it.
#[test]
fn scrub_on_and_off_agree_report_for_report() {
    use parblast::blast::{DbStats, Program, SearchParams};
    use parblast::mpiblast::{ParallelBlast, Parallelization, Scheme, Tracer};
    use parblast::seqdb::{
        extract_query, segment_into_fragments, SeqType, SyntheticConfig, SyntheticNt,
    };
    use parblast::serve::{serve_batched, serve_batched_scrubbed};

    for seed in SEEDS {
        let base =
            std::env::temp_dir().join(format!("determinism_scrub_{seed}_{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let mut g = SyntheticNt::new(SyntheticConfig {
            total_residues: 200_000,
            seed,
            ..Default::default()
        });
        let mut seqs = vec![];
        while let Some(x) = g.next() {
            seqs.push(x);
        }
        let queries: Vec<Vec<u8>> = (0..3)
            .map(|i| extract_query(&seqs[i + 1].1, 350, 0.02, seed ^ i as u64))
            .collect();
        let db = DbStats {
            residues: g.residues(),
            nseq: g.sequences(),
        };
        let infos =
            segment_into_fragments(&base.join("fmt"), "nt", SeqType::Nucleotide, 3, seqs).unwrap();
        let frag_bytes: Vec<(String, Vec<u8>)> = infos
            .iter()
            .map(|info| {
                (
                    info.path
                        .file_name()
                        .unwrap()
                        .to_string_lossy()
                        .into_owned(),
                    std::fs::read(&info.path).unwrap(),
                )
            })
            .collect();
        for which in ["original", "pvfs", "ceft"] {
            let root = base.join(which);
            let scheme = match which {
                "original" => Scheme::local_at(&root, 2).unwrap(),
                "pvfs" => Scheme::pvfs_at(&root, 4, 64 << 10).unwrap(),
                _ => Scheme::ceft_at(&root, 2, 64 << 10).unwrap(),
            };
            let mut fragments = vec![];
            for (name, bytes) in &frag_bytes {
                scheme.load_fragment(name, bytes).unwrap();
                fragments.push(name.clone());
            }
            let job = ParallelBlast {
                program: Program::Blastn,
                params: SearchParams::blastn(),
                db,
                fragments,
                workers: 2,
                scheme,
                tracer: Tracer::disabled(),
                parallelization: Parallelization::DatabaseSegmentation,
                prefetch: true,
                list_io: false,
            };
            let off = serve_batched(&job, &queries, 3).unwrap();
            let on = serve_batched_scrubbed(&job, &queries, 3, Some(4 << 20)).unwrap();
            assert_eq!(
                off.per_query, on.per_query,
                "seed {seed} scheme {which}: the scrubber changed a report"
            );
            assert!(off.scrub.is_none(), "seed {seed} scheme {which}");
            let totals = on.scrub.expect("scrub totals must be reported");
            assert_eq!(
                totals.corrupt_found, 0,
                "seed {seed} scheme {which}: clean store scrubbed dirty: {totals:?}"
            );
        }
        std::fs::remove_dir_all(&base).ok();
    }
}

/// The networked daemon is a transport, not a transform: for every seed,
/// the payload a TCP client receives for each query is byte-identical to
/// what in-process `serve_batched` renders for the same query against
/// the same store — pinned by an FNV-1a digest over the concatenated
/// results as well as query-by-query equality.
#[test]
fn daemon_results_are_byte_identical_to_in_process_serving() {
    use parblast::blast::{DbStats, Program, SearchParams};
    use parblast::mpiblast::{ParallelBlast, Parallelization, Scheme, Tracer};
    use parblast::net::{BlastRunner, NetClient, NetServer, ServerConfig};
    use parblast::seqdb::{
        extract_query, segment_into_fragments, SeqType, SyntheticConfig, SyntheticNt,
    };
    use parblast::serve::serve_batched;
    use std::sync::Arc;

    let fnv = |chunks: &[&[u8]]| -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for chunk in chunks {
            for &b in *chunk {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    };

    for seed in SEEDS {
        let base =
            std::env::temp_dir().join(format!("determinism_daemon_{seed}_{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let mut g = SyntheticNt::new(SyntheticConfig {
            total_residues: 200_000,
            seed,
            ..Default::default()
        });
        let mut seqs = vec![];
        while let Some(x) = g.next() {
            seqs.push(x);
        }
        let queries: Vec<Vec<u8>> = (0..4)
            .map(|i| extract_query(&seqs[i + 1].1, 350, 0.02, seed ^ i as u64))
            .collect();
        let db = DbStats {
            residues: g.residues(),
            nseq: g.sequences(),
        };
        let infos =
            segment_into_fragments(&base.join("fmt"), "nt", SeqType::Nucleotide, 3, seqs).unwrap();
        let frag_bytes: Vec<(String, Vec<u8>)> = infos
            .iter()
            .map(|info| {
                (
                    info.path
                        .file_name()
                        .unwrap()
                        .to_string_lossy()
                        .into_owned(),
                    std::fs::read(&info.path).unwrap(),
                )
            })
            .collect();
        let make_job = |root: &std::path::Path| {
            let scheme = Scheme::local_at(root, 2).unwrap();
            let mut fragments = vec![];
            for (name, bytes) in &frag_bytes {
                scheme.load_fragment(name, bytes).unwrap();
                fragments.push(name.clone());
            }
            ParallelBlast {
                program: Program::Blastn,
                params: SearchParams::blastn(),
                db,
                fragments,
                workers: 2,
                scheme,
                tracer: Tracer::disabled(),
                parallelization: Parallelization::DatabaseSegmentation,
                prefetch: false,
                list_io: false,
            }
        };

        let in_process = serve_batched(&make_job(&base.join("local")), &queries, 2).unwrap();

        let handle = NetServer::start(
            "127.0.0.1:0",
            ServerConfig {
                shards: 1,
                max_batch: 2,
                ..Default::default()
            },
            Arc::new(BlastRunner::new(make_job(&base.join("daemon")), 0)),
        )
        .unwrap();
        let mut client = NetClient::connect(&handle.addr().to_string()).unwrap();
        let over_the_wire: Vec<Vec<u8>> =
            queries.iter().map(|q| client.query(q).unwrap()).collect();
        handle.drain();
        handle.join();

        for (i, (wire, local)) in over_the_wire.iter().zip(&in_process.per_query).enumerate() {
            assert_eq!(
                wire.as_slice(),
                local.as_bytes(),
                "seed {seed} query {i}: daemon result diverged from serve_batched"
            );
        }
        let wire_digest = fnv(&over_the_wire.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let local_digest = fnv(&in_process
            .per_query
            .iter()
            .map(String::as_bytes)
            .collect::<Vec<_>>());
        assert_eq!(wire_digest, local_digest, "seed {seed}: digest mismatch");
        std::fs::remove_dir_all(&base).ok();
    }
}

/// The serving sweep — simulator probes, Poisson arrivals, batch-queue
/// replay, percentile extraction — is a pure function of its
/// configuration: two identical invocations agree on every report field.
#[test]
fn serve_sweep_is_a_pure_function_of_config() {
    use parblast::experiments::serve_sweep;

    let run = || serve_sweep(64 << 20, &[1.2], &[1, 4], 40, 256);
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.arrival_qps, y.arrival_qps,
            "{} B={}",
            x.scheme, x.max_batch
        );
        assert_eq!(x.report, y.report, "{} B={}", x.scheme, x.max_batch);
    }
    // Batching must actually change the outcome (the reports are not
    // trivially equal across cells).
    assert_ne!(a[0].report, a[1].report);
}
