//! Determinism audit: the simulator with a fault schedule is a pure
//! function of (configuration, seed). Two runs with the same seed must
//! produce byte-identical event-delivery traces — fault injection included
//! — and different seeds must actually change the schedule.

use parblast::hwsim::FaultSchedule;
use parblast::mpiblast::{run_simblast, SimBlastConfig, SimScheme};
use parblast::simcore::SimTime;

const SEEDS: [u64; 3] = [42, 1003, 77];

fn faulted(seed: u64) -> SimBlastConfig {
    SimBlastConfig {
        nodes: 5,
        workers: 4,
        fragments: 4,
        db_bytes: 64 << 20,
        scheme: SimScheme::Ceft {
            primary: vec![0, 1],
            mirror: vec![2, 3],
        },
        master_node: 4,
        warmup_s: 1.0,
        horizon_s: 400.0,
        seed,
        capture_trace: true,
        faults: FaultSchedule::new()
            .crash_server(SimTime::from_secs_f64(3.0), 1)
            .revive_server(SimTime::from_secs_f64(10.0), 1)
            .stall_disk(SimTime::from_secs_f64(2.0), 0, SimTime::from_millis(200)),
        ..Default::default()
    }
}

#[test]
fn same_seed_and_schedule_give_identical_traces() {
    for seed in SEEDS {
        let a = run_simblast(&faulted(seed));
        let b = run_simblast(&faulted(seed));
        assert!(a.completed, "seed {seed}: CEFT must survive the schedule");
        assert!(
            !a.trace.is_empty(),
            "seed {seed}: trace capture produced nothing"
        );
        // Byte-identical: compare the rendered traces, not just counts.
        assert_eq!(
            format!("{:?}", a.trace),
            format!("{:?}", b.trace),
            "seed {seed}: two runs diverged"
        );
        assert_eq!(a.makespan_s, b.makespan_s, "seed {seed}");
        assert_eq!(a.retries, b.retries, "seed {seed}");
        assert_eq!(a.failovers, b.failovers, "seed {seed}");
    }
}

#[test]
fn different_seeds_give_different_traces() {
    let traces: Vec<String> = SEEDS
        .iter()
        .map(|&s| format!("{:?}", run_simblast(&faulted(s)).trace))
        .collect();
    assert_ne!(traces[0], traces[1]);
    assert_ne!(traces[1], traces[2]);
    assert_ne!(traces[0], traces[2]);
}

#[test]
fn trace_capture_does_not_change_the_outcome() {
    let with = faulted(42);
    let mut without = faulted(42);
    without.capture_trace = false;
    let a = run_simblast(&with);
    let b = run_simblast(&without);
    assert!(b.trace.is_empty());
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.failovers, b.failovers);
}
