//! Property-based tests (proptest) on the core data structures and
//! invariants: stripe layout coverage, mirrored read plans, 2-bit packing,
//! alignment scores, Karlin statistics, the page cache, and the real
//! striped/mirrored stores.

use proptest::prelude::*;

use parblast::blast::{
    align_stats, banded_global, extend_ungapped, ungapped_params, AlignOp, GapPenalties, Scorer,
};
use parblast::pio::{
    read_all, MirroredLayout, MirroredStore, ObjectStore, ServerId, StripeLayout, StripedStore,
};
use parblast::pvfs::backoff_delay;
use parblast::seqdb::{
    pack_2bit, reverse_complement, to_ascii, unpack_2bit, PackedVolume, PackedVolumeStream,
    SeqType, VolumeWriter,
};
use parblast::serve::{AdmissionQueue, Priority, Query};
use parblast::simcore::SimTime;

proptest! {
    /// Every byte of any extent is covered exactly once by the stripe map.
    #[test]
    fn stripe_map_partitions_extent(
        stripe in 1u64..64,
        servers in 1u32..9,
        offset in 0u64..512,
        len in 0u64..512,
    ) {
        let l = StripeLayout::new(stripe, servers);
        let ranges = l.map_extent(offset, len);
        let total: u64 = ranges.iter().map(|r| r.len).sum();
        prop_assert_eq!(total, len);
        // Each byte maps into its server's range at the right local offset.
        for pos in offset..offset + len {
            let srv = l.server_of(pos);
            let lo = l.local_offset_of(pos);
            let r = ranges.iter().find(|r| r.server == srv).unwrap();
            prop_assert!(lo >= r.local_offset && lo < r.local_offset + r.len);
        }
        // At most one range per server, ranges are disjoint per server.
        let mut seen = std::collections::HashSet::new();
        for r in &ranges {
            prop_assert!(seen.insert(r.server));
        }
    }

    /// The dual-half mirrored plan covers the extent exactly, regardless of
    /// the skip set (as long as no mirror pair is fully skipped).
    #[test]
    fn mirrored_plan_covers_extent(
        stripe in 1u64..32,
        servers in 1u32..5,
        offset in 0u64..256,
        len in 0u64..256,
        first_group in 0u8..2,
        skip_index in 0u32..5,
        skip_group in 0u8..2,
    ) {
        let l = MirroredLayout::new(stripe, servers);
        let skips = if skip_index < servers {
            vec![ServerId { group: skip_group, index: skip_index }]
        } else {
            vec![]
        };
        let parts = l.plan_read(offset, len, first_group, &skips);
        let total: u64 = parts.iter().map(|p| p.len).sum();
        prop_assert_eq!(total, len);
        for p in &parts {
            prop_assert!(!skips.contains(&p.server), "skipped server used");
        }
    }

    /// A degraded mirrored plan — *any* subset of the primary group dead —
    /// still covers every byte of the extent exactly once, and never
    /// touches a dead server.
    #[test]
    fn degraded_mirrored_plan_covers_every_byte_once(
        stripe in 1u64..32,
        servers in 1u32..5,
        offset in 0u64..256,
        len in 0u64..256,
        first_group in 0u8..2,
        dead_mask in 0u16..16,
    ) {
        let l = MirroredLayout::new(stripe, servers);
        let dead: Vec<ServerId> = (0..servers)
            .filter(|i| dead_mask & (1 << i) != 0)
            .map(|index| ServerId { group: 0, index })
            .collect();
        let parts = l.plan_read(offset, len, first_group, &dead);
        for p in &parts {
            prop_assert!(!dead.contains(&p.server), "dead server {:?} used", p.server);
        }
        // Exactly-once coverage: replay each part back onto the logical
        // extent. A part serves the stripes of its server index within one
        // half; mark every logical byte it covers and require each byte to
        // be marked exactly once.
        let mut cover = vec![0u32; len as usize];
        let half = len / 2;
        let halves = [
            (offset, half, first_group),
            (offset + half, len - half, 1 - first_group),
        ];
        for p in &parts {
            // Find which half this part belongs to (unique per (server
            // index, local range) pair).
            let mut matched = false;
            for &(ho, hl, _g) in &halves {
                if hl == 0 {
                    continue;
                }
                let ranges = l.stripe.map_extent(ho, hl);
                if ranges.iter().any(|r| {
                    r.server == p.server.index
                        && r.local_offset == p.local_offset
                        && r.len == p.len
                }) {
                    for pos in ho..ho + hl {
                        if l.stripe.server_of(pos) == p.server.index {
                            cover[(pos - offset) as usize] += 1;
                        }
                    }
                    matched = true;
                    break;
                }
            }
            prop_assert!(matched, "part {p:?} matches no half");
        }
        for (i, &c) in cover.iter().enumerate() {
            prop_assert!(c == 1, "byte {} covered {} times", i, c);
        }
    }

    /// Retry backoff delays are monotone nondecreasing in the attempt
    /// number and bounded by the cap.
    #[test]
    fn backoff_monotone_and_bounded(
        base_us in 1u64..1_000_000,
        cap_factor in 1u64..64,
        attempts in 1u32..80,
    ) {
        let base = SimTime::from_micros(base_us);
        let cap = SimTime::from_micros(base_us * cap_factor);
        let mut prev = SimTime::ZERO;
        for a in 0..attempts {
            let d = backoff_delay(a, base, cap);
            prop_assert!(d >= prev, "attempt {} shrank: {:?} < {:?}", a, d, prev);
            prop_assert!(d <= cap, "attempt {} above cap: {:?}", a, d);
            prop_assert!(d >= base.min(cap), "attempt {} below base: {:?}", a, d);
            prev = d;
        }
        // The first delay is exactly the base (clamped to the cap).
        prop_assert_eq!(backoff_delay(0, base, cap), base.min(cap));
    }

    /// 2-bit packing round-trips for arbitrary code sequences.
    #[test]
    fn pack_round_trip(codes in proptest::collection::vec(0u8..4, 0..200)) {
        let packed = pack_2bit(&codes);
        prop_assert_eq!(packed.len(), codes.len().div_ceil(4));
        prop_assert_eq!(unpack_2bit(&packed, codes.len()), codes);
    }

    /// Packed-scan equivalence oracle: rolling the seed word across 2-bit
    /// packed subject bytes reports exactly the same `(qpos, spos)` pairs,
    /// in the same order, as the byte-at-a-time scanner over the unpacked
    /// codes — for random queries/subjects, every supported word size, and
    /// ragged (non-multiple-of-4) subject lengths. (The issue asks for
    /// word sizes up to 16; the direct-address table caps at 12 — 4^12
    /// cells — which is also NCBI blastn's limit, so 4..=12 is the full
    /// supported range.)
    #[test]
    fn scan_packed_equals_byte_scan(
        query in proptest::collection::vec(0u8..4, 0..120),
        subject in proptest::collection::vec(0u8..4, 0..250),
        word in 4usize..=12,
    ) {
        let lookup = parblast::blast::NtLookup::build(&query, word);
        let mut by_bytes = Vec::new();
        lookup.scan(&subject, |qp, sp| by_bytes.push((qp, sp)));
        let mut by_packed = Vec::new();
        lookup.scan_packed(&pack_2bit(&subject), subject.len(), |qp, sp| {
            by_packed.push((qp, sp));
        });
        prop_assert_eq!(by_bytes, by_packed);
    }

    /// Same oracle on self-similar sequences (subject = shifted copy of the
    /// query), which guarantees dense hit streams instead of the sparse
    /// ones random pairs produce.
    #[test]
    fn scan_packed_equals_byte_scan_dense(
        seed in proptest::collection::vec(0u8..4, 20..80),
        repeat in 2usize..5,
        trim in 0usize..4,
        word in 4usize..=12,
    ) {
        let query = seed.clone();
        let mut subject: Vec<u8> = Vec::new();
        for _ in 0..repeat {
            subject.extend_from_slice(&seed);
        }
        subject.truncate(subject.len() - trim); // force ragged tails too
        let lookup = parblast::blast::NtLookup::build(&query, word);
        let mut by_bytes = Vec::new();
        lookup.scan(&subject, |qp, sp| by_bytes.push((qp, sp)));
        let mut by_packed = Vec::new();
        lookup.scan_packed(&pack_2bit(&subject), subject.len(), |qp, sp| {
            by_packed.push((qp, sp));
        });
        prop_assert!(!by_bytes.is_empty(), "self-similar subject must seed");
        prop_assert_eq!(by_bytes, by_packed);
    }

    /// Fused-kernel oracle: one `scan_packed_batched` pass over the
    /// merged lookup of B queries reports, per query, exactly the
    /// `(qpos, spos)` stream B separate per-query `scan_packed` passes
    /// report — for B ∈ 1..=8, every supported word size, and ragged
    /// (non-multiple-of-4) subject lengths. The union of per-query
    /// candidate sets is therefore identical, with per-context order
    /// preserved.
    #[test]
    fn scan_packed_batched_equals_per_query_scans(
        queries in proptest::collection::vec(
            proptest::collection::vec(0u8..4, 0..120),
            1..9usize,
        ),
        subject in proptest::collection::vec(0u8..4, 0..250),
        word in 4usize..=12,
    ) {
        let ctxs: Vec<&[u8]> = queries.iter().map(|q| q.as_slice()).collect();
        let batched = parblast::blast::BatchedNtLookup::build(&ctxs, word);
        let packed = pack_2bit(&subject);
        let mut fused: Vec<Vec<(u32, u32)>> = vec![Vec::new(); queries.len()];
        batched.scan_packed_batched(&packed, subject.len(), |ctx, qp, sp| {
            fused[ctx as usize].push((qp, sp));
        });
        for (i, q) in queries.iter().enumerate() {
            let lookup = parblast::blast::NtLookup::build(q, word);
            let mut solo = Vec::new();
            lookup.scan_packed(&packed, subject.len(), |qp, sp| solo.push((qp, sp)));
            prop_assert_eq!(&fused[i], &solo, "query {} diverged from its solo scan", i);
        }
    }

    /// Streaming volume construction equals the monolithic load: feeding
    /// [`PackedVolumeStream`] arbitrary ragged chunk sizes — never aligned
    /// to sequence or stripe boundaries — finishes with a volume identical
    /// to what [`PackedVolume::read_from`] produces from the same bytes,
    /// and `ready_seqs` grows monotonically to the full sequence count.
    #[test]
    fn packed_stream_equals_read_from_for_ragged_chunks(
        seqs in proptest::collection::vec(
            proptest::collection::vec(0u8..4, 0..60),
            1..10,
        ),
        chunks in proptest::collection::vec(1usize..97, 1..40),
    ) {
        let mut buf = std::io::Cursor::new(Vec::new());
        let mut w = VolumeWriter::new(&mut buf, SeqType::Nucleotide).unwrap();
        for (i, s) in seqs.iter().enumerate() {
            w.add_ascii(&format!("s{i} ragged-chunk prop"), &to_ascii(s)).unwrap();
        }
        w.finish().unwrap();
        let bytes = buf.into_inner();
        let whole = PackedVolume::read_from(&mut bytes.as_slice()).unwrap();

        let mut src = bytes.as_slice();
        let mut stream = PackedVolumeStream::begin(&mut src).unwrap();
        let mut sizes = chunks.iter().cycle();
        let mut prev_ready = 0usize;
        while !stream.is_complete() {
            let n = stream.feed(&mut src, *sizes.next().unwrap()).unwrap();
            prop_assert!(n > 0, "feed must progress while incomplete");
            prop_assert!(stream.ready_seqs() >= prev_ready, "ready_seqs shrank");
            prev_ready = stream.ready_seqs();
        }
        prop_assert_eq!(stream.ready_seqs(), seqs.len());
        let finished = stream.finish(&mut src).unwrap();
        prop_assert_eq!(format!("{whole:?}"), format!("{finished:?}"));
    }

    /// Reverse complement is an involution and preserves length.
    #[test]
    fn revcomp_involution(codes in proptest::collection::vec(0u8..4, 0..300)) {
        let rc = reverse_complement(&codes);
        prop_assert_eq!(rc.len(), codes.len());
        prop_assert_eq!(reverse_complement(&rc), codes);
    }

    /// Ungapped extension never returns a segment scoring below the seed
    /// and stays within sequence bounds.
    #[test]
    fn ungapped_extension_invariants(
        q in proptest::collection::vec(0u8..4, 12..120),
        s in proptest::collection::vec(0u8..4, 12..120),
        qpos in 0usize..100,
        spos in 0usize..100,
    ) {
        let seed = 4usize;
        let scorer = Scorer::Nucleotide { reward: 1, penalty: -3 };
        let qpos = qpos % (q.len() - seed);
        let spos = spos % (s.len() - seed);
        let seed_score: i32 = (0..seed)
            .map(|i| scorer.score(q[qpos + i], s[spos + i]))
            .sum();
        let h = extend_ungapped(&q, &s, qpos, spos, seed, &scorer, 10);
        prop_assert!(h.score >= seed_score);
        prop_assert!(h.q_end <= q.len() && h.s_end <= s.len());
        prop_assert!(h.q_start <= qpos && h.s_start <= spos);
        prop_assert_eq!(h.q_end - h.q_start, h.s_end - h.s_start);
        // Recomputing the segment score matches.
        let recomputed: i32 = (0..h.len())
            .map(|i| scorer.score(q[h.q_start + i], s[h.s_start + i]))
            .sum();
        prop_assert_eq!(recomputed, h.score);
    }

    /// Banded global alignment: ops consume exactly the two sequences and
    /// the traceback score matches a recomputation from the ops.
    #[test]
    fn banded_global_consistency(
        q in proptest::collection::vec(0u8..4, 1..60),
        s in proptest::collection::vec(0u8..4, 1..60),
    ) {
        let scorer = Scorer::Nucleotide { reward: 1, penalty: -3 };
        let gaps = GapPenalties::blastn();
        let (score, ops) = banded_global(&q, &s, &scorer, gaps, 8);
        let (mut qi, mut si) = (0usize, 0usize);
        let mut recomputed = 0i32;
        // Gap run state: (direction marker, length). A run closes whenever
        // the op kind changes (Sub, or the opposite gap direction).
        let mut run: Option<(AlignOp, i32)> = None;
        let close = |run: &mut Option<(AlignOp, i32)>, rec: &mut i32| {
            if let Some((_, len)) = run.take() {
                *rec -= gaps.cost(len);
            }
        };
        for &op in &ops {
            match op {
                AlignOp::Sub => {
                    close(&mut run, &mut recomputed);
                    recomputed += scorer.score(q[qi], s[si]);
                    qi += 1;
                    si += 1;
                }
                gap_op => {
                    match &mut run {
                        Some((kind, len)) if *kind == gap_op => *len += 1,
                        _ => {
                            close(&mut run, &mut recomputed);
                            run = Some((gap_op, 1));
                        }
                    }
                    if gap_op == AlignOp::InsSubject {
                        si += 1;
                    } else {
                        qi += 1;
                    }
                }
            }
        }
        close(&mut run, &mut recomputed);
        prop_assert_eq!(qi, q.len());
        prop_assert_eq!(si, s.len());
        prop_assert_eq!(recomputed, score);
        let st = align_stats(&q, &s, &ops);
        prop_assert_eq!(st.length, ops.len());
        prop_assert_eq!(st.identities + st.mismatches + st.gap_letters, ops.len());
    }

    /// Karlin λ satisfies its defining equation for random negative-mean
    /// score distributions.
    #[test]
    fn karlin_lambda_is_a_root(
        p_match in 0.05f64..0.45,
        penalty in 2i32..6,
    ) {
        // Score +1 w.p. p, −penalty w.p. 1−p; mean negative by construction.
        let mean = p_match - penalty as f64 * (1.0 - p_match);
        prop_assume!(mean < -0.01);
        let mut probs = vec![0.0; (penalty + 2) as usize];
        probs[0] = 1.0 - p_match;
        probs[(penalty + 1) as usize] = p_match;
        let params = ungapped_params(-penalty, &probs).unwrap();
        let check: f64 = probs
            .iter()
            .enumerate()
            .map(|(i, &p)| p * (params.lambda * (i as i32 - penalty) as f64).exp())
            .sum();
        prop_assert!((check - 1.0).abs() < 1e-6, "Σp·e^(λs) = {check}");
        prop_assert!(params.h > 0.0 && params.k > 0.0 && params.k < 1.0);
    }
}

/// One admission-queue operation for the model-equivalence proptest.
#[derive(Debug, Clone, Copy)]
enum QueueOp {
    /// Offer a query of the given class (0..3).
    Offer(u8),
    /// Take a batch of at most this many queries.
    Take(usize),
}

proptest! {
    /// The admission queue against a reference model: capacity is
    /// enforced exactly (offers fail iff the queue is full), scheduling is
    /// strict priority across classes with FIFO inside each class, and no
    /// admitted query is ever lost — after a full drain everything
    /// admitted has been served exactly once (no starvation within a
    /// class).
    #[test]
    fn admission_queue_matches_reference_model(
        ops in proptest::collection::vec(
            prop_oneof![
                (0u8..3).prop_map(QueueOp::Offer),
                (1usize..6).prop_map(QueueOp::Take),
            ],
            1..300,
        ),
        capacity in 1usize..32,
    ) {
        let mut q = AdmissionQueue::new(capacity);
        let mut model: [std::collections::VecDeque<u64>; 3] = Default::default();
        let mut next_id = 0u64;
        let mut model_rejected = 0u64;
        let mut served: Vec<u64> = Vec::new();
        let take = |q: &mut AdmissionQueue,
                        model: &mut [std::collections::VecDeque<u64>; 3],
                        served: &mut Vec<u64>,
                        max: usize|
         -> Result<(), TestCaseError> {
            let got: Vec<u64> = q
                .take_batch(max, SimTime::ZERO)
                .iter()
                .map(|x| x.id)
                .collect();
            let mut expect = Vec::new();
            for lane in model.iter_mut() {
                while expect.len() < max {
                    match lane.pop_front() {
                        Some(i) => expect.push(i),
                        None => break,
                    }
                }
                if expect.len() >= max {
                    break;
                }
            }
            prop_assert_eq!(&got, &expect);
            served.extend(got);
            Ok(())
        };
        for op in ops {
            match op {
                QueueOp::Offer(class) => {
                    let priority = Priority::ALL[class as usize];
                    let res = q.offer(Query {
                        id: next_id,
                        priority,
                        arrival: SimTime::ZERO,
                        deadline: None,
                        payload: 0,
                    });
                    let full =
                        model.iter().map(|l| l.len()).sum::<usize>() >= capacity.max(1);
                    prop_assert_eq!(res.is_err(), full, "offer vs model fullness");
                    if full {
                        model_rejected += 1;
                    } else {
                        model[class as usize].push_back(next_id);
                    }
                    next_id += 1;
                }
                QueueOp::Take(max) => take(&mut q, &mut model, &mut served, max)?,
            }
        }
        // Drain: every admitted query must eventually come out.
        while !q.is_empty() {
            take(&mut q, &mut model, &mut served, 4)?;
        }
        prop_assert_eq!(q.rejected(), model_rejected);
        prop_assert_eq!(served.len() as u64, q.admitted());
        // Exactly once: ids are unique by construction, so set size matches.
        let uniq: std::collections::HashSet<u64> = served.iter().copied().collect();
        prop_assert_eq!(uniq.len(), served.len());
    }

    /// Deadlines: a query whose deadline has passed is never handed to a
    /// batch, and every admitted query is either served or counted
    /// expired.
    #[test]
    fn expired_queries_are_dropped_never_served(
        deadlines in proptest::collection::vec(
            proptest::option::of(0u64..50),
            1..120,
        ),
        batch_max in 1usize..6,
        step_s in 1u64..10,
    ) {
        let mut q = AdmissionQueue::new(1024);
        for (i, d) in deadlines.iter().enumerate() {
            q.offer(Query {
                id: i as u64,
                priority: Priority::Normal,
                arrival: SimTime::ZERO,
                deadline: d.map(SimTime::from_secs),
                payload: 0,
            })
            .unwrap();
        }
        let mut now = SimTime::ZERO;
        let mut served = 0u64;
        while !q.is_empty() {
            let batch = q.take_batch(batch_max, now);
            for b in &batch {
                prop_assert!(
                    b.deadline.is_none_or(|d| d >= now),
                    "query {} served {}s past its deadline",
                    b.id,
                    now.as_secs_f64()
                );
            }
            served += batch.len() as u64;
            now = now.saturating_add(SimTime::from_secs(step_s));
        }
        prop_assert_eq!(served + q.expired(), deadlines.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Real striped store: arbitrary payloads and stripe sizes round-trip,
    /// including partial reads.
    #[test]
    fn striped_store_round_trip(
        stripe in 1u64..2000,
        servers in 1usize..6,
        payload in proptest::collection::vec(any::<u8>(), 0..20_000),
        window in 0usize..20_000,
    ) {
        let base = std::env::temp_dir().join(format!(
            "prop_striped_{}_{}",
            std::process::id(),
            stripe * 31 + servers as u64
        ));
        let dirs: Vec<_> = (0..servers).map(|i| base.join(format!("s{i}"))).collect();
        let st = StripedStore::new(dirs, stripe).unwrap();
        st.put("x", &payload).unwrap();
        prop_assert_eq!(read_all(&st, "x").unwrap(), payload.clone());
        if !payload.is_empty() {
            let off = window % payload.len();
            let len = (window / 7) % (payload.len() - off).max(1);
            let mut r = st.open("x").unwrap();
            let mut buf = vec![0u8; len];
            r.read_at(off as u64, &mut buf).unwrap();
            prop_assert_eq!(&buf[..], &payload[off..off + len]);
        }
        std::fs::remove_dir_all(&base).ok();
    }

    /// Real mirrored store: round-trips with any single server skipped.
    #[test]
    fn mirrored_store_round_trip_with_skip(
        stripe in 1u64..1000,
        servers in 1u32..4,
        payload in proptest::collection::vec(any::<u8>(), 1..10_000),
        hot_index in 0u32..4,
        hot_group in 0u8..2,
    ) {
        let base = std::env::temp_dir().join(format!(
            "prop_mirror_{}_{}",
            std::process::id(),
            stripe * 17 + servers as u64
        ));
        let p: Vec<_> = (0..servers).map(|i| base.join(format!("p{i}"))).collect();
        let m: Vec<_> = (0..servers).map(|i| base.join(format!("m{i}"))).collect();
        let st = MirroredStore::new(p, m, stripe).unwrap();
        st.put("x", &payload).unwrap();
        if hot_index < servers {
            // Mark one server hot via direct EWMA training.
            let hot = ServerId { group: hot_group, index: hot_index };
            st.monitor().record(hot, 1000, 5.0);
            for g in 0..2u8 {
                for i in 0..servers {
                    let s = ServerId { group: g, index: i };
                    if s != hot {
                        st.monitor().record(s, 1_000_000, 1e-4);
                    }
                }
            }
        }
        prop_assert_eq!(read_all(&st, "x").unwrap(), payload);
        std::fs::remove_dir_all(&base).ok();
    }

    /// Integrity: flipping *any single bit* of *any* stored stripe is
    /// detected — the striped store (no redundancy) must refuse to return
    /// the bytes, surfacing the typed corrupt error instead of garbage.
    #[test]
    fn any_single_flipped_bit_is_detected(
        stripe in 1u64..500,
        servers in 1usize..4,
        payload in proptest::collection::vec(any::<u8>(), 1..8_000),
        victim in 0usize..8_000,
        bit in 0u8..8,
    ) {
        let base = std::env::temp_dir().join(format!(
            "prop_bitflip_{}_{}",
            std::process::id(),
            stripe * 29 + servers as u64
        ));
        let dirs: Vec<_> = (0..servers).map(|i| base.join(format!("s{i}"))).collect();
        let st = StripedStore::new(dirs.clone(), stripe).unwrap();
        st.put("x", &payload).unwrap();
        // Flip one bit of the stored copy, behind the store's back.
        let pos = victim % payload.len();
        let layout = StripeLayout::new(stripe, servers as u32);
        let shard = dirs[layout.server_of(pos as u64) as usize].join("x");
        let mut raw = std::fs::read(&shard).unwrap();
        raw[layout.local_offset_of(pos as u64) as usize] ^= 1 << bit;
        std::fs::write(&shard, &raw).unwrap();
        let err = read_all(&st, "x").unwrap_err();
        prop_assert!(
            parblast::pio::is_corrupt(&err),
            "flip of payload byte {pos} bit {bit} not reported corrupt: {err}"
        );
        std::fs::remove_dir_all(&base).ok();
    }

    /// Integrity: with a mirror, a flipped bit is *transparent* — every
    /// read returns the original bytes no matter which copy rotted, and a
    /// scrub pass rewrites the bad stripe so the disk heals too.
    #[test]
    fn mirrored_reads_stay_byte_identical_under_any_flipped_bit(
        stripe in 1u64..500,
        servers in 1u32..4,
        payload in proptest::collection::vec(any::<u8>(), 1..8_000),
        victim in 0usize..8_000,
        bit in 0u8..8,
        group in 0u8..2,
    ) {
        let base = std::env::temp_dir().join(format!(
            "prop_repair_{}_{}",
            std::process::id(),
            stripe * 23 + servers as u64 + group as u64 * 7
        ));
        let p: Vec<_> = (0..servers).map(|i| base.join(format!("p{i}"))).collect();
        let m: Vec<_> = (0..servers).map(|i| base.join(format!("m{i}"))).collect();
        let st = MirroredStore::new(p.clone(), m.clone(), stripe).unwrap();
        st.put("x", &payload).unwrap();
        let pos = victim % payload.len();
        let layout = StripeLayout::new(stripe, servers);
        let srv = layout.server_of(pos as u64) as usize;
        let shard = if group == 0 { &p[srv] } else { &m[srv] }.join("x");
        let good_shard = std::fs::read(&shard).unwrap();
        let mut raw = good_shard.clone();
        raw[layout.local_offset_of(pos as u64) as usize] ^= 1 << bit;
        std::fs::write(&shard, &raw).unwrap();
        // Reads never leak the corruption (read-repair refetches from the
        // partner when the plan lands on the bad copy)...
        prop_assert_eq!(read_all(&st, "x").unwrap(), payload.clone());
        // ...and one scrub pass guarantees the on-disk copy heals.
        let mut limiter = parblast::pio::RateLimiter::new(0);
        let (_repaired, unrepairable) = st.scrub_object("x", &mut limiter).unwrap();
        prop_assert!(unrepairable.is_empty(), "{unrepairable:?}");
        prop_assert!(st.monitor().repaired_stripes() >= 1);
        prop_assert_eq!(std::fs::read(&shard).unwrap(), good_shard);
        prop_assert_eq!(read_all(&st, "x").unwrap(), payload);
        std::fs::remove_dir_all(&base).ok();
    }

    /// Real mirrored store: any subset of primary servers dead — replicas
    /// deleted from disk — still round-trips via the mirror partners.
    #[test]
    fn mirrored_store_round_trip_with_dead_primaries(
        stripe in 1u64..500,
        servers in 1u32..4,
        payload in proptest::collection::vec(any::<u8>(), 1..8_000),
        dead_mask in 0u16..8,
    ) {
        let base = std::env::temp_dir().join(format!(
            "prop_dead_{}_{}",
            std::process::id(),
            stripe * 13 + servers as u64 + dead_mask as u64 * 101
        ));
        let p: Vec<_> = (0..servers).map(|i| base.join(format!("p{i}"))).collect();
        let m: Vec<_> = (0..servers).map(|i| base.join(format!("m{i}"))).collect();
        let st = MirroredStore::new(p.clone(), m, stripe).unwrap();
        st.put("x", &payload).unwrap();
        for i in 0..servers {
            if dead_mask & (1 << i) != 0 {
                st.monitor().mark_dead(ServerId { group: 0, index: i });
                std::fs::remove_file(p[i as usize].join("x")).ok();
            }
        }
        prop_assert_eq!(read_all(&st, "x").unwrap(), payload);
        std::fs::remove_dir_all(&base).ok();
    }

    /// List-I/O equivalence: `read_many_at` over an arbitrary region list
    /// — ragged tails, adjacent and repeated offsets included — returns
    /// exactly the concatenation of per-region `read_at` calls, on both
    /// the striped and the mirrored store, while submitting at most one
    /// reader-pool job per server lane instead of one per region.
    #[test]
    fn read_many_at_equals_concatenated_read_at(
        stripe in 1u64..700,
        servers in 1usize..5,
        payload in proptest::collection::vec(any::<u8>(), 1..12_000),
        words in proptest::collection::vec(any::<u64>(), 1..12),
    ) {
        let base = std::env::temp_dir().join(format!(
            "prop_listio_{}_{}",
            std::process::id(),
            stripe * 37 + servers as u64
        ));
        let n_bytes = payload.len() as u64;
        let regions: Vec<(u64, u64)> = words
            .iter()
            .map(|w| {
                let off = w % n_bytes;
                let len = 1 + (w >> 16) % (n_bytes - off);
                (off, len)
            })
            .collect();
        let mut want = Vec::new();
        // Striped.
        let dirs: Vec<_> = (0..servers).map(|i| base.join(format!("s{i}"))).collect();
        let st = StripedStore::new(dirs, stripe).unwrap();
        st.put("x", &payload).unwrap();
        let mut r = st.open("x").unwrap();
        for &(off, len) in &regions {
            let mut buf = vec![0u8; len as usize];
            r.read_at(off, &mut buf).unwrap();
            want.extend_from_slice(&buf);
        }
        let before = st.server_requests();
        let got = r.read_many_at(&regions).unwrap();
        let jobs = st.server_requests() - before;
        prop_assert_eq!(&got, &want);
        prop_assert!(
            jobs <= servers as u64,
            "striped list shipped {jobs} jobs for {servers} servers"
        );
        // Mirrored: same bytes, at most one job per lane (2 groups).
        let p: Vec<_> = (0..servers).map(|i| base.join(format!("p{i}"))).collect();
        let m: Vec<_> = (0..servers).map(|i| base.join(format!("m{i}"))).collect();
        let mst = MirroredStore::new(p, m, stripe).unwrap();
        mst.put("x", &payload).unwrap();
        let mut mr = mst.open("x").unwrap();
        let before = mst.server_requests();
        let mgot = mr.read_many_at(&regions).unwrap();
        let mjobs = mst.server_requests() - before;
        prop_assert_eq!(&mgot, &want);
        prop_assert!(
            mjobs <= 2 * servers as u64,
            "mirrored list shipped {mjobs} jobs for {servers} servers"
        );
        std::fs::remove_dir_all(&base).ok();
    }

    /// List-I/O integrity is region-by-region: a flipped bit under one
    /// region of a list fails the whole list with the typed corrupt error
    /// (striped — no redundancy to repair with), while a list touching
    /// only clean stripes still reads back byte-identical.
    #[test]
    fn list_read_corruption_is_detected_per_region(
        stripe in 8u64..300,
        servers in 1usize..4,
        payload in proptest::collection::vec(any::<u8>(), 64..6_000),
        victim in 0usize..6_000,
        bit in 0u8..8,
    ) {
        let base = std::env::temp_dir().join(format!(
            "prop_listio_rot_{}_{}",
            std::process::id(),
            stripe * 41 + servers as u64
        ));
        let dirs: Vec<_> = (0..servers).map(|i| base.join(format!("s{i}"))).collect();
        let st = StripedStore::new(dirs.clone(), stripe).unwrap();
        st.put("x", &payload).unwrap();
        let n_bytes = payload.len() as u64;
        // Cover the object with four regions (ragged tail on the last).
        let q = n_bytes.div_ceil(4);
        let regions: Vec<(u64, u64)> = (0..4)
            .map(|i| (i * q, q.min(n_bytes - i * q)))
            .filter(|&(_, len)| len > 0)
            .collect();
        // Rot one bit behind the store's back.
        let pos = victim % payload.len();
        let layout = StripeLayout::new(stripe, servers as u32);
        let shard = dirs[layout.server_of(pos as u64) as usize].join("x");
        let mut raw = std::fs::read(&shard).unwrap();
        raw[layout.local_offset_of(pos as u64) as usize] ^= 1 << bit;
        std::fs::write(&shard, &raw).unwrap();
        let mut r = st.open("x").unwrap();
        let err = r.read_many_at(&regions).unwrap_err();
        prop_assert!(
            parblast::pio::is_corrupt(&err),
            "flip of byte {pos} bit {bit} not reported corrupt by list read: {err}"
        );
        // Regions whose stripe span avoids the rotten stripe stay clean.
        let bad_stripe = pos as u64 / stripe;
        let clean: Vec<(u64, u64)> = regions
            .iter()
            .copied()
            .filter(|&(off, len)| {
                let first = off / stripe;
                let last = (off + len - 1) / stripe;
                bad_stripe < first || bad_stripe > last
            })
            .collect();
        if !clean.is_empty() {
            let got = r.read_many_at(&clean).unwrap();
            let mut want = Vec::new();
            for &(off, len) in &clean {
                want.extend_from_slice(&payload[off as usize..(off + len) as usize]);
            }
            prop_assert_eq!(got, want);
        }
        std::fs::remove_dir_all(&base).ok();
    }
}
